#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

#include "sim/contract.h"

namespace hostsim {

EventId EventLoop::schedule_at(Nanos at, Action action) {
  require(at >= now_, "cannot schedule events in the past");
  require(static_cast<bool>(action), "event action must be callable");
  if (at == now_) {
    // Fire-at-now events skip the heap and the pool entirely.  Every
    // heap entry at the current time was scheduled before
    // now-processing began (an event scheduled *during* it lands here
    // instead), so draining the heap's now-entries before this FIFO
    // preserves insertion order.
    imm_incoming_.push_back(std::move(action));
    ++immediate_live_;
    return kImmediateBit | imm_next_seq_++;
  }
  return push_heap(at, static_cast<std::uint64_t>(now_), next_seq_++,
                   std::move(action));
}

EventId EventLoop::schedule_after(Nanos delay, Action action) {
  require(delay >= 0, "event delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(action));
}

EventId EventLoop::schedule_delivery(Nanos at, Nanos sent, std::uint64_t sub,
                                     Action action) {
  require(at > now_, "deliveries must land strictly in the future");
  require(static_cast<bool>(action), "event action must be callable");
  require((sub & kDeliveryBit) == 0, "delivery subkey overflows tag bit");
  return push_heap(at, static_cast<std::uint64_t>(sent), kDeliveryBit | sub,
                   std::move(action));
}

EventId EventLoop::push_heap(Nanos at, std::uint64_t key_hi,
                             std::uint64_t key_lo, Action action) {
  const Slot slot = actions_.acquire(std::move(action));
  if (slot >= gen_.size()) {
    gen_.resize(slot + 1, 0);
    heap_pos_.resize(slot + 1, 0);
  }
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{at, key_hi, key_lo, slot});
  heap_pos_[slot] = pos;
  sift_up(pos);
  return make_id(slot);
}

void EventLoop::cancel(EventId id) {
  if (id == 0) return;
  if (id & kImmediateBit) {
    cancel_immediate(id & ~kImmediateBit);
    return;
  }
  const auto slot = static_cast<Slot>((id & 0xffffffffu) - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  // A fired or previously-cancelled event released its slot and bumped
  // the generation, so a stale id fails this check and is a no-op.
  if (slot >= gen_.size() || (gen_[slot] & 0x7fffffffu) != gen ||
      !actions_.is_live(slot)) {
    return;
  }
  remove_at(heap_pos_[slot]);
  release_slot(slot);
}

void EventLoop::cancel_immediate(std::uint64_t seq) {
  // Entries before the active buffer's base (or before its drain head)
  // already fired or were recycled: stale id, no-op.
  if (seq < imm_active_base_) return;
  std::uint64_t index = seq - imm_active_base_;
  if (index < imm_active_.size()) {
    if (index < imm_head_ || !imm_active_[index]) return;
    imm_active_[index].reset();
    --immediate_live_;
    return;
  }
  index -= imm_active_.size();
  if (index < imm_incoming_.size() && imm_incoming_[index]) {
    imm_incoming_[index].reset();
    --immediate_live_;
  }
}

void EventLoop::fire(Slot slot, Nanos at) {
  // Move the action out and release its slot before invoking it, so a
  // cancel() of the firing id from inside the action is a clean no-op
  // and re-scheduling from inside the action can reuse the slot.
  Action action = std::move(actions_[slot]);
  release_slot(slot);
  now_ = at;
  ++executed_;
  action();
  if (watchdog_every_ > 0 && executed_ % watchdog_every_ == 0) {
    watchdog_hook_(*this);
  }
}

bool EventLoop::step() {
  // Heap entries at the current time predate every immediate-queue
  // entry, so they fire first.
  if (!heap_.empty() && heap_[0].at == now_) {
    const Slot slot = heap_[0].slot;
    remove_at(0);
    fire(slot, now_);
    return true;
  }
  for (;;) {
    // Skip entries cancelled while queued (reset to empty Actions).
    while (imm_head_ < imm_active_.size() && !imm_active_[imm_head_]) {
      ++imm_head_;
    }
    if (imm_head_ < imm_active_.size()) {
      // Fire in place: the active buffer only ever shrinks from the
      // front while draining (pushes go to imm_incoming_), so the
      // reference stays valid across the call.  The head is advanced
      // first so an in-action cancel of the firing id is a no-op.
      Action& action = imm_active_[imm_head_];
      ++imm_head_;
      --immediate_live_;
      ++executed_;
      action();
      action.reset();
      if (watchdog_every_ > 0 && executed_ % watchdog_every_ == 0) {
        watchdog_hook_(*this);
      }
      return true;
    }
    if (imm_incoming_.empty()) break;
    imm_active_.clear();
    imm_head_ = 0;
    std::swap(imm_active_, imm_incoming_);
    imm_active_base_ = imm_next_seq_ - imm_active_.size();
  }
  if (!imm_active_.empty()) {
    // Fully drained (possibly ending on cancelled tails): recycle.
    imm_active_.clear();
    imm_head_ = 0;
    imm_active_base_ = imm_next_seq_;
  }
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  remove_at(0);
  fire(top.slot, top.at);
  return true;
}

void EventLoop::run_until(Nanos deadline) {
  require(deadline >= now_, "deadline is in the past");
  while (immediate_live_ > 0 || (!heap_.empty() && heap_[0].at <= deadline)) {
    step();
  }
  now_ = deadline;
}

void EventLoop::run_to_completion() {
  while (step()) {
  }
}

void EventLoop::sift_up(std::uint32_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos].slot] = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  heap_pos_[entry.slot] = pos;
}

std::uint32_t EventLoop::sift_down(std::uint32_t pos) {
  const HeapEntry entry = heap_[pos];
  const auto count = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first = pos * kArity + 1;
    if (first >= count) break;
    std::uint32_t best = first;
    const std::uint32_t limit = std::min(first + kArity, count);
    for (std::uint32_t child = first + 1; child < limit; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  heap_[pos] = entry;
  heap_pos_[entry.slot] = pos;
  return pos;
}

void EventLoop::remove_at(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_pos_[heap_[pos].slot] = pos;
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The moved entry may belong above or below its new position; the
    // two sifts are mutually exclusive, so running both is one compare
    // extra at most.
    sift_up(sift_down(pos));
  }
}

void EventLoop::release_slot(Slot slot) {
  actions_.release(slot);
  ++gen_[slot];
}

}  // namespace hostsim
