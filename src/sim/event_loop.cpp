#include "sim/event_loop.h"

#include <utility>

#include "sim/contract.h"

namespace hostsim {
namespace {

/// Drops cancelled events sitting at the front of the queue.
template <class Queue, class Cancelled>
void prune(Queue& queue, Cancelled& cancelled) {
  while (!queue.empty()) {
    auto it = cancelled.find(queue.top().id);
    if (it == cancelled.end()) return;
    cancelled.erase(it);
    queue.pop();
  }
}

}  // namespace

EventId EventLoop::schedule_at(Nanos at, Action action) {
  require(at >= now_, "cannot schedule events in the past");
  require(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_id_++;
  queue_.push(Scheduled{at, id, std::move(action)});
  return id;
}

EventId EventLoop::schedule_after(Nanos delay, Action action) {
  require(delay >= 0, "event delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(action));
}

void EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

bool EventLoop::step() {
  prune(queue_, cancelled_);
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action is moved out right
  // before pop, which is safe because pop is the next operation.
  Scheduled ev = std::move(const_cast<Scheduled&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  if (watchdog_every_ > 0 && executed_ % watchdog_every_ == 0) {
    watchdog_hook_(*this);
  }
  return true;
}

void EventLoop::run_until(Nanos deadline) {
  require(deadline >= now_, "deadline is in the past");
  for (;;) {
    prune(queue_, cancelled_);
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
  }
  now_ = deadline;
}

void EventLoop::run_to_completion() {
  while (step()) {
  }
}

}  // namespace hostsim
