// End-of-run invariant checking and a liveness watchdog.
//
// InvariantChecker is a registry of named checks.  Components register
// closures that inspect their state and return a diagnostic string on
// violation (or nothing when the invariant holds); run() sweeps them all
// and collects every failure, so a broken run reports the complete
// picture instead of dying on the first assert.
//
// Watchdog detects two failure shapes a finished-looking run can hide:
//  * stalls — simulated time advances but a progress counter does not,
//    while the run is supposed to be active (e.g. a flow wedged in
//    recovery with a dead timer); and
//  * livelock — events execute but simulated time stops advancing
//    (a zero-delay event storm), caught via the EventLoop's event-count
//    watchdog hook, which a purely time-scheduled check could never see.
//
// Both are sim-level and fully generic: upper layers wire in probes.
#ifndef HOSTSIM_SIM_INVARIANT_CHECKER_H
#define HOSTSIM_SIM_INVARIANT_CHECKER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/units.h"

namespace hostsim {

/// One failed invariant: which check, and a human-readable diagnostic
/// naming the offending object(s).
struct InvariantViolation {
  std::string check;
  std::string detail;
};

class InvariantChecker {
 public:
  /// A check returns std::nullopt when the invariant holds, or a
  /// diagnostic string when it is violated.
  using Check = std::function<std::optional<std::string>()>;

  /// Registers a named check; checks run in registration order.
  void add_check(std::string name, Check check);

  /// Runs every check and returns the collected violations (empty when
  /// the run is clean).  Never throws or aborts by itself.
  std::vector<InvariantViolation> run();

  std::size_t num_checks() const { return checks_.size(); }

  /// Formats violations as a multi-line report ("" when clean).
  static std::string format(const std::vector<InvariantViolation>& violations);

 private:
  struct Named {
    std::string name;
    Check check;
  };
  std::vector<Named> checks_;
};

struct WatchdogConfig {
  /// Progress-check interval in simulated time; 0 disables the watchdog.
  Nanos period = 0;
  /// Consecutive zero-progress periods (while active) before tripping.
  int max_stalled_periods = 3;
  /// Executed-event budget with frozen simulated time before a livelock
  /// trip; 0 disables event-storm detection.
  std::uint64_t event_storm_budget = 2'000'000;

  bool enabled() const { return period > 0; }

  /// A watchdog tuned for a run of the given duration: checks every
  /// ~1/20th of the run, trips after ~3 silent checks.
  static WatchdogConfig for_duration(Nanos duration);
};

class Watchdog {
 public:
  /// `progress` is any monotone activity counter (bytes delivered,
  /// transactions completed); `active` reports whether zero progress is
  /// legitimate (idle) or a stall (work outstanding).
  Watchdog(EventLoop& loop, WatchdogConfig config);

  /// Manual-polling form for sharded runs: there is no single loop to
  /// schedule ticks on, so the orchestrator drives the progress check
  /// via poll() at its heartbeat (event-storm detection is per shard —
  /// ShardedExecutor::set_storm_budget).
  explicit Watchdog(WatchdogConfig config);

  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void set_progress_probe(std::function<std::uint64_t()> probe) {
    progress_probe_ = std::move(probe);
  }
  void set_activity_probe(std::function<bool()> probe) {
    activity_probe_ = std::move(probe);
  }
  /// Invoked (once) on a trip with a diagnostic; default: postcondition
  /// failure via ensure(), i.e. abort (or ContractViolation in tests).
  void set_on_trip(std::function<void(const std::string&)> handler) {
    on_trip_ = std::move(handler);
  }

  /// Starts periodic checks, ending at `until` (simulated time).
  void arm(Nanos until);

  /// One progress check at simulated time `now` (manual-polling form);
  /// the caller invokes this once per config period.
  void poll(Nanos now);

  std::uint64_t trips() const { return trips_; }

 private:
  void tick();
  void check_progress();
  void trip(const std::string& diagnostic);
  void on_events_executed();

  EventLoop* loop_;
  WatchdogConfig config_;
  std::function<std::uint64_t()> progress_probe_;
  std::function<bool()> activity_probe_;
  std::function<void(const std::string&)> on_trip_;

  Nanos until_ = 0;
  std::uint64_t last_progress_ = 0;
  int stalled_periods_ = 0;
  Nanos last_hook_now_ = -1;
  std::uint64_t frozen_hook_calls_ = 0;
  std::uint64_t trips_ = 0;
  bool armed_ = false;
};

}  // namespace hostsim

#endif  // HOSTSIM_SIM_INVARIANT_CHECKER_H
