#include "sim/sharded_executor.h"

#include <algorithm>

namespace hostsim {

ShardedExecutor::ShardedExecutor(std::vector<EventLoop*> loops,
                                 Nanos lookahead)
    : loops_(std::move(loops)), lookahead_(lookahead) {
  require(!loops_.empty(), "sharded executor needs at least one loop");
  for (EventLoop* loop : loops_) {
    require(loop != nullptr, "sharded executor loop must be non-null");
  }
  require(lookahead_ > 0, "sharded execution needs positive link lookahead");
  storm_.resize(loops_.size());
  errors_.resize(loops_.size());
  if (loops_.size() > 1) {
    workers_.reserve(loops_.size());
    for (std::size_t i = 0; i < loops_.size(); ++i) {
      workers_.emplace_back([this, i] { worker_main(i); });
    }
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedExecutor::set_storm_budget(std::uint64_t budget) {
  if (budget == 0) return;
  const std::uint64_t every = std::max<std::uint64_t>(1, budget / 2);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    StormState* state = &storm_[i];
    loops_[i]->set_watchdog(every, [state](EventLoop& loop) {
      if (loop.now() == state->last_now) {
        // `every` events executed without the clock moving, several
        // times in a row: a zero-delay event storm inside this shard.
        if (++state->frozen_calls >= 4) {
          ensure(false, "watchdog: shard event storm (clock frozen)");
        }
      } else {
        state->last_now = loop.now();
        state->frozen_calls = 0;
      }
    });
  }
}

Nanos ShardedExecutor::min_next_event() const {
  Nanos earliest = EventLoop::kNoEvent;
  for (const EventLoop* loop : loops_) {
    earliest = std::min(earliest, loop->next_event_at());
  }
  return earliest;
}

void ShardedExecutor::barrier() {
  if (barrier_hook_) barrier_hook_();
}

Nanos ShardedExecutor::clamp_to_heartbeat(Nanos window) const {
  if (heartbeat_period_ <= 0) return window;
  const Nanos next_tick = (now_ / heartbeat_period_ + 1) * heartbeat_period_;
  return std::min(window, next_tick);
}

void ShardedExecutor::execute_round(Nanos window) {
  if (workers_.empty()) {
    round_deadline_ = window;
    loops_[0]->run_until(window);
    now_ = window;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_deadline_ = window;
    done_ = 0;
    ++round_;
  }
  cv_start_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return done_ == workers_.size(); });
  }
  now_ = window;
  for (std::size_t i = 0; i < errors_.size(); ++i) {
    if (errors_[i]) {
      std::exception_ptr error = errors_[i];
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void ShardedExecutor::worker_main(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    Nanos window;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [this, seen] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      window = round_deadline_;
    }
    try {
      loops_[shard]->run_until(window);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_;
    }
    cv_done_.notify_all();
  }
}

void ShardedExecutor::run_until(Nanos deadline) {
  require(deadline >= now_, "deadline is in the past");
  for (;;) {
    barrier();
    if (now_ >= deadline) break;
    const Nanos earliest = min_next_event();
    Nanos window;
    if (earliest >= deadline) {
      // Nothing (relevant) pending before the deadline: jump straight
      // to it.  Loops still run_until(deadline) so their clocks land
      // exactly where the serial engine's would.
      window = deadline;
    } else {
      // Conservative window: every event executed this round fires at
      // t >= earliest, so its cross-shard deliveries land at
      // t + lookahead > window.  The -1 keeps this strict even for
      // zero-serialization frames.
      window = std::min(
          deadline, std::max(now_ + 1, earliest + lookahead_ - 1));
    }
    window = clamp_to_heartbeat(window);
    execute_round(window);
    if (heartbeat_period_ > 0 && now_ % heartbeat_period_ == 0) {
      heartbeat_(now_);
    }
  }
}

void ShardedExecutor::run_to_completion() {
  for (;;) {
    barrier();
    const Nanos earliest = min_next_event();
    if (earliest == EventLoop::kNoEvent) break;
    Nanos window = std::max(now_ + 1, earliest + lookahead_ - 1);
    window = std::max(window, earliest);
    window = clamp_to_heartbeat(window);
    execute_round(window);
    if (heartbeat_period_ > 0 && now_ % heartbeat_period_ == 0) {
      heartbeat_(now_);
    }
  }
}

}  // namespace hostsim
