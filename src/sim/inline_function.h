// Small-buffer-optimized, move-only callable — the event engine's
// replacement for std::function on the hot path.
//
// Every scheduled event and every core task used to carry a
// std::function, whose moves run through an indirect "manager" call and
// whose larger captures heap-allocate.  InlineFunction stores the
// callable in a fixed inline buffer (48 bytes by default — enough for
// every capture shape the Nic/Stack/Link hot path schedules: a couple of
// pointers and a few integers) and dispatches through a single static
// vtable pointer.  Oversized or over-aligned callables transparently
// fall back to one heap allocation, so cold paths keep working; keeping
// hot-path captures under the inline capacity is a performance contract,
// not a correctness one.
#ifndef HOSTSIM_SIM_INLINE_FUNCTION_H
#define HOSTSIM_SIM_INLINE_FUNCTION_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hostsim {

/// Inline storage of the engine's callables, sized for the hot-path
/// capture shapes (this*, a couple of pointers, a few scalars).
inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <class Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;  // primary template intentionally undefined

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& callable) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(callable));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(callable)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the stored callable (if any); *this becomes empty.
  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the stored callable lives in the inline buffer (no heap).
  /// Exposed so tests can pin the no-allocation property of hot shapes.
  bool is_inline() const {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <class D>
  static D* inline_target(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <class D>
  static D* heap_target(void* storage) {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <class D>
  static constexpr VTable kInlineVTable = {
      [](void* storage, Args&&... args) -> R {
        return (*inline_target<D>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* from = inline_target<D>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) { inline_target<D>(storage)->~D(); },
      /*inline_storage=*/true,
  };

  template <class D>
  static constexpr VTable kHeapVTable = {
      [](void* storage, Args&&... args) -> R {
        return (*heap_target<D>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) D*(heap_target<D>(src));
      },
      [](void* storage) { delete heap_target<D>(storage); },
      /*inline_storage=*/false,
  };

  void move_from(InlineFunction& other) {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace hostsim

#endif  // HOSTSIM_SIM_INLINE_FUNCTION_H
