#include "sim/fault_spec.h"

#include <cstdlib>
#include <vector>

namespace hostsim {
namespace {

/// Splits "a,b,c" into its comma-separated fields (empty fields kept so
/// they can be rejected with a precise message).
std::vector<std::string_view> split_fields(std::string_view value) {
  std::vector<std::string_view> fields;
  while (true) {
    const std::size_t comma = value.find(',');
    fields.push_back(value.substr(0, comma));
    if (comma == std::string_view::npos) break;
    value.remove_prefix(comma + 1);
  }
  return fields;
}

/// Parses one whole field as a number; the entire field must be consumed
/// ("12x" and "" are errors, not 12 and 0).
std::optional<double> parse_num(std::string_view field) {
  if (field.empty()) return std::nullopt;
  const std::string owned(field);
  char* end = nullptr;
  const double parsed = std::strtod(owned.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

std::string bad_spec(const char* flag, const char* format,
                     std::string_view value, std::string detail) {
  return std::string(flag) + "=" + std::string(value) + ": " +
         std::move(detail) + " (expected " + flag + "=" + format + ")";
}

struct FieldReader {
  const char* flag;
  const char* format;
  std::string_view value;
  std::vector<std::string_view> fields;
  std::optional<std::string> error;

  FieldReader(const char* flag, const char* format, std::string_view value)
      : flag(flag), format(format), value(value), fields(split_fields(value)) {}

  bool count_between(std::size_t lo, std::size_t hi) {
    if (fields.size() >= lo && fields.size() <= hi) return true;
    error = bad_spec(flag, format, value,
                     "takes " + std::to_string(lo) + ".." +
                         std::to_string(hi) + " comma-separated fields, got " +
                         std::to_string(fields.size()));
    return false;
  }

  /// Field `i` as a number, or records an error naming `what`.
  std::optional<double> num(std::size_t i, const char* what) {
    if (error) return std::nullopt;
    const std::optional<double> parsed = parse_num(fields[i]);
    if (!parsed) {
      error = bad_spec(flag, format, value,
                       std::string(what) + " '" + std::string(fields[i]) +
                           "' is not a number");
    }
    return parsed;
  }
};

Nanos to_ms(double value) {
  return static_cast<Nanos>(value * static_cast<double>(kMillisecond));
}

}  // namespace

std::optional<std::string> parse_ge_spec(std::string_view value,
                                         FaultPlan& plan) {
  FieldReader r("--ge", "AVG[,BURST[,PBAD]]", value);
  if (!r.count_between(1, 3)) return r.error;
  const auto avg = r.num(0, "average loss AVG");
  const auto burst = r.fields.size() > 1
                         ? r.num(1, "burst frames BURST")
                         : std::optional<double>(10.0);
  const auto bad = r.fields.size() > 2 ? r.num(2, "bad-state loss PBAD")
                                       : std::optional<double>(0.5);
  if (r.error) return r.error;
  if (*avg < 0 || *avg >= *bad) {
    return bad_spec("--ge", "AVG[,BURST[,PBAD]]", value,
                    "AVG must satisfy 0 <= AVG < PBAD");
  }
  if (*burst < 1.0) {
    return bad_spec("--ge", "AVG[,BURST[,PBAD]]", value,
                    "BURST must be >= 1 frame");
  }
  plan.gilbert_elliott =
      GilbertElliottConfig::for_average_loss(*avg, *burst, *bad);
  return std::nullopt;
}

std::optional<std::string> parse_flap_spec(std::string_view value,
                                           FaultPlan& plan) {
  FieldReader r("--flap", "AT_MS,DUR_MS[,LINK]", value);
  if (!r.count_between(2, 3)) return r.error;
  const auto at = r.num(0, "start AT_MS");
  const auto dur = r.num(1, "duration DUR_MS");
  const auto link = r.fields.size() > 2 ? r.num(2, "link LINK")
                                        : std::optional<double>(-1.0);
  if (r.error) return r.error;
  if (*dur <= 0) {
    return bad_spec("--flap", "AT_MS,DUR_MS[,LINK]", value,
                    "DUR_MS must be > 0");
  }
  LinkFlap flap;
  flap.at = to_ms(*at);
  flap.duration = to_ms(*dur);
  flap.link = static_cast<int>(*link);
  plan.link_flaps.push_back(flap);
  return std::nullopt;
}

std::optional<std::string> parse_stall_spec(std::string_view value,
                                            FaultPlan& plan) {
  FieldReader r("--stall", "AT_MS,DUR_MS[,QUEUE[,HOST]]", value);
  if (!r.count_between(2, 4)) return r.error;
  const auto at = r.num(0, "start AT_MS");
  const auto dur = r.num(1, "duration DUR_MS");
  const auto queue = r.fields.size() > 2 ? r.num(2, "queue QUEUE")
                                         : std::optional<double>(-1.0);
  const auto host = r.fields.size() > 3 ? r.num(3, "host HOST")
                                        : std::optional<double>(-1.0);
  if (r.error) return r.error;
  if (*dur <= 0) {
    return bad_spec("--stall", "AT_MS,DUR_MS[,QUEUE[,HOST]]", value,
                    "DUR_MS must be > 0");
  }
  RingStall stall;
  stall.at = to_ms(*at);
  stall.duration = to_ms(*dur);
  stall.queue = static_cast<int>(*queue);
  stall.host = static_cast<int>(*host);
  plan.ring_stalls.push_back(stall);
  return std::nullopt;
}

std::optional<std::string> parse_pressure_spec(std::string_view value,
                                               FaultPlan& plan) {
  FieldReader r("--pressure", "AT_MS,DUR_MS[,DENY]", value);
  if (!r.count_between(2, 3)) return r.error;
  const auto at = r.num(0, "start AT_MS");
  const auto dur = r.num(1, "duration DUR_MS");
  const auto deny = r.fields.size() > 2 ? r.num(2, "deny probability DENY")
                                        : std::optional<double>(1.0);
  if (r.error) return r.error;
  if (*dur <= 0) {
    return bad_spec("--pressure", "AT_MS,DUR_MS[,DENY]", value,
                    "DUR_MS must be > 0");
  }
  if (*deny < 0 || *deny > 1) {
    return bad_spec("--pressure", "AT_MS,DUR_MS[,DENY]", value,
                    "DENY must be a probability in [0, 1]");
  }
  PoolPressure pressure;
  pressure.at = to_ms(*at);
  pressure.duration = to_ms(*dur);
  pressure.deny_prob = *deny;
  plan.pool_pressure.push_back(pressure);
  return std::nullopt;
}

std::optional<std::string> parse_crash_spec(std::string_view value,
                                            FaultPlan& plan) {
  FieldReader r("--crash", "HOST,AT_MS,DOWN_MS", value);
  if (!r.count_between(3, 3)) return r.error;
  const auto host = r.num(0, "host HOST");
  const auto at = r.num(1, "start AT_MS");
  const auto down = r.num(2, "downtime DOWN_MS");
  if (r.error) return r.error;
  if (*host < 0) {
    return bad_spec("--crash", "HOST,AT_MS,DOWN_MS", value,
                    "HOST must be >= 0");
  }
  if (*down <= 0) {
    return bad_spec("--crash", "HOST,AT_MS,DOWN_MS", value,
                    "DOWN_MS must be > 0");
  }
  HostCrash crash;
  crash.host = static_cast<int>(*host);
  crash.at = to_ms(*at);
  crash.down_for = to_ms(*down);
  plan.host_crashes.push_back(crash);
  return std::nullopt;
}

std::optional<std::string> parse_blackhole_spec(std::string_view value,
                                                FaultPlan& plan) {
  FieldReader r("--blackhole", "PORT,AT_MS,DUR_MS", value);
  if (!r.count_between(3, 3)) return r.error;
  const auto port = r.num(0, "port PORT");
  const auto at = r.num(1, "start AT_MS");
  const auto dur = r.num(2, "duration DUR_MS");
  if (r.error) return r.error;
  if (*port < 0) {
    return bad_spec("--blackhole", "PORT,AT_MS,DUR_MS", value,
                    "PORT must be >= 0");
  }
  if (*dur <= 0) {
    return bad_spec("--blackhole", "PORT,AT_MS,DUR_MS", value,
                    "DUR_MS must be > 0");
  }
  PortBlackhole hole;
  hole.port = static_cast<int>(*port);
  hole.at = to_ms(*at);
  hole.duration = to_ms(*dur);
  plan.port_blackholes.push_back(hole);
  return std::nullopt;
}

}  // namespace hostsim
