// Deterministic fault-injection subsystem.
//
// A FaultPlan describes every fault a run should experience — bursty
// (Gilbert–Elliott) wire loss, link flaps, frame corruption, NIC rx-ring
// stalls, and page-pool pressure windows.  The FaultInjector executes the
// plan against the event loop: window-shaped faults (flaps, stalls,
// pressure) are scheduled as events at construction, while probabilistic
// faults (loss, corruption) are drawn from a dedicated RNG stream forked
// from the run's root seed.  Every fault is therefore a pure function of
// (configuration, seed) and tier-1 runs stay byte-for-byte reproducible.
//
// Layering: this is a sim-level component; hw/mem components consult it
// through narrow hooks (Link per frame, Nic per receive, PagePool per
// allocation) and never the other way around.
#ifndef HOSTSIM_SIM_FAULT_INJECTOR_H
#define HOSTSIM_SIM_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace hostsim {

/// Two-state Markov (Gilbert–Elliott) frame-loss model.  The chain
/// advances once per frame; the stationary loss rate is
/// `pi_bad * loss_bad + (1 - pi_bad) * loss_good` with
/// `pi_bad = p_enter_bad / (p_enter_bad + p_exit_bad)`, and the mean
/// burst length is `1 / p_exit_bad` frames.
struct GilbertElliottConfig {
  bool enabled = false;
  double p_enter_bad = 0.0;  ///< per-frame good -> bad transition
  double p_exit_bad = 1.0;   ///< per-frame bad -> good transition
  double loss_good = 0.0;    ///< drop probability in the good state
  double loss_bad = 1.0;     ///< drop probability in the bad state

  /// Parameters matching a target average loss rate with mean bursts of
  /// `burst_frames` frames at `loss_bad` drop probability in bad state.
  static GilbertElliottConfig for_average_loss(double avg_loss,
                                               double burst_frames = 10.0,
                                               double loss_bad = 0.5);
};

/// One link outage: the link drops everything in [at, at + duration).
/// `link < 0` downs every link; otherwise only the link (or switch port)
/// with that id — in a cluster, the uplink of host `link`.
struct LinkFlap {
  Nanos at = 0;
  Nanos duration = 0;
  int link = -1;
};

/// One rx-ring stall burst: the NIC cannot consume descriptors in
/// [at, at + duration) (PCIe backpressure / descriptor-fetch starvation);
/// arriving frames are dropped.  `queue < 0` stalls every queue and
/// `host < 0` matches every host.
struct RingStall {
  Nanos at = 0;
  Nanos duration = 0;
  int queue = -1;
  int host = -1;
};

/// One page-pool pressure window: in [at, at + duration) rx page
/// allocations fail with probability `deny_prob` (memory pressure
/// shrinking the pool), so rings drain and refill organically.
struct PoolPressure {
  Nanos at = 0;
  Nanos duration = 0;
  double deny_prob = 1.0;
};

/// One host crash: at `at` the host's NIC goes dark and every socket on
/// it dies (their in-flight pages are accounted as explicitly
/// destroyed); at `at + down_for` the host restarts — applications must
/// reconnect through fresh sockets to resume.
struct HostCrash {
  Nanos at = 0;
  Nanos down_for = 0;
  int host = 0;
};

/// One switch-port blackhole: egress toward `port` is silently dropped
/// in [at, at + duration) — no RST, no link-down signal, nothing the
/// sender can observe except missing ACKs.  Retries must mask it.
struct PortBlackhole {
  Nanos at = 0;
  Nanos duration = 0;
  int port = 0;
};

/// The complete fault schedule for one run.
struct FaultPlan {
  GilbertElliottConfig gilbert_elliott;
  double corrupt_rate = 0.0;  ///< delivered-but-checksum-failed probability
  std::vector<LinkFlap> link_flaps;
  std::vector<RingStall> ring_stalls;
  std::vector<PoolPressure> pool_pressure;
  std::vector<HostCrash> host_crashes;
  std::vector<PortBlackhole> port_blackholes;

  /// True when any fault is configured (an empty plan costs nothing).
  bool any() const {
    return gilbert_elliott.enabled || corrupt_rate > 0.0 ||
           !link_flaps.empty() || !ring_stalls.empty() ||
           !pool_pressure.empty() || !host_crashes.empty() ||
           !port_blackholes.empty();
  }
};

/// Everything the injector (and the watchdog, which shares the struct in
/// Metrics) counted during a run.
struct FaultCounters {
  std::uint64_t random_drops = 0;     ///< GE good-state (i.i.d.-like) drops
  std::uint64_t bursty_drops = 0;     ///< GE bad-state drops
  std::uint64_t flap_drops = 0;       ///< frames dropped while link down
  std::uint64_t corrupt_frames = 0;   ///< frames delivered corrupted
  std::uint64_t flaps = 0;            ///< link-down events entered
  std::uint64_t ring_stall_drops = 0; ///< frames dropped by stalled rings
  std::uint64_t pool_denials = 0;     ///< rx page allocations denied
  std::uint64_t watchdog_trips = 0;   ///< stall-watchdog activations
  std::uint64_t host_crashes = 0;     ///< host-crash windows entered
  std::uint64_t crash_drops = 0;      ///< frames dropped at a dark NIC
  std::uint64_t blackhole_drops = 0;  ///< frames swallowed by a blackholed port

  std::uint64_t wire_faults() const {
    return random_drops + bursty_drops + flap_drops + corrupt_frames;
  }
};

class FaultInjector {
 public:
  /// What the wire should do with one frame.
  enum class WireFault : std::uint8_t {
    none,         ///< deliver untouched
    drop_random,  ///< lost in the GE good state
    drop_bursty,  ///< lost in the GE bad state
    drop_flap,    ///< link is down
    corrupt,      ///< deliver, but flag the frame checksum-failed
  };

  /// Schedules the plan's window faults on `loop` and forks a dedicated
  /// RNG stream for the probabilistic ones.
  FaultInjector(EventLoop& loop, FaultPlan plan);

  /// Sharded-cluster form: one injector per shard, scheduling a plan
  /// pre-filtered to the shard's hosts/links on the shard's own loop,
  /// drawing from an explicitly provided (seed-deterministic) stream.
  /// Global windows (LinkFlap::link < 0, host-less ring stalls) are
  /// replicated into every shard's plan; `count_global_windows` is true
  /// on exactly one shard so the merged `flaps` counter matches serial.
  FaultInjector(EventLoop& loop, FaultPlan plan, Rng rng,
                bool count_global_windows);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // --- Link hooks ---------------------------------------------------------

  /// Advances the per-direction loss chain and classifies one frame on
  /// `link`.  `direction` is the link direction index (0 or 1).  The
  /// Gilbert–Elliott chains are per-direction and shared across links — a
  /// deliberate simplification that keeps the two-host RNG draw sequence
  /// (and thus every legacy figure) bit-identical.
  WireFault on_frame(int link, int direction);

  /// Back-to-back convenience: the single wire is link 0.
  WireFault on_frame(int direction) { return on_frame(0, direction); }

  /// True when neither a global flap nor a flap targeting `link` is open.
  bool link_up(int link) const;
  bool link_up() const { return link_up(0); }

  // --- NIC hook -----------------------------------------------------------

  /// True while `queue` on `host` is inside a ring-stall window.
  bool ring_stalled(int host, int queue) const;

  /// Back-to-back convenience: the sole receiver is host 0's peer, and
  /// legacy plans never set RingStall::host, so any host index matches.
  bool ring_stalled(int queue) const { return ring_stalled(0, queue); }

  /// Counts one frame dropped because of a ring stall.
  void note_ring_stall_drop() { ++counters_.ring_stall_drops; }

  // --- Crash / blackhole hooks --------------------------------------------

  /// False while `host` is inside a crash window (its NIC is dark).
  bool host_up(int host) const;

  /// True while switch egress toward `port` is being silently dropped.
  bool port_blackholed(int port) const;

  /// Counts one frame dropped at a crashed host's dark NIC.
  void note_crash_drop() { ++counters_.crash_drops; }

  /// Counts one frame silently swallowed by a blackholed switch port.
  void note_blackhole_drop() { ++counters_.blackhole_drops; }

  /// Invoked at each crash-window edge: `up == false` when the host goes
  /// dark (the owner should kill its sockets) and `up == true` when it
  /// restarts.  Registered by the topology layer before the first window
  /// fires; windows with no handler only darken the NIC.
  using CrashHandler = std::function<void(int host, bool up)>;
  void set_crash_handler(CrashHandler handler) {
    crash_handler_ = std::move(handler);
  }

  /// Counts one frame lost to a down link somewhere other than the
  /// link's own transmit path (the switch drops on egress when the
  /// destination port's downlink is flapped).
  void note_flap_drop() { ++counters_.flap_drops; }

  // --- Page-pool hook -----------------------------------------------------

  /// False when a pressure window denies this rx page allocation.
  bool pool_alloc_allowed();

  // --- Accounting ---------------------------------------------------------

  const FaultCounters& counters() const { return counters_; }
  FaultCounters& counters() { return counters_; }

 private:
  struct GeState {
    bool bad = false;
  };

  EventLoop* loop_;
  FaultPlan plan_;
  Rng rng_;
  bool count_global_windows_ = true;
  FaultCounters counters_;

  std::array<GeState, 2> ge_;   // one chain per link direction
  int link_down_depth_ = 0;     // >0 while a global (link==-1) flap is open
  std::vector<int> down_links_; // links with an open targeted flap (multiset)
  int stall_all_depth_ = 0;     // >0 while a host==-1,queue==-1 stall is open
  std::vector<std::pair<int, int>> stalled_;  // open (host, queue) stalls
  int pressure_depth_ = 0;      // >0 while any pressure window is open
  double pressure_deny_ = 0.0;  // deny probability of the innermost window
  std::vector<int> down_hosts_;        // hosts in an open crash window (multiset)
  std::vector<int> blackholed_ports_;  // ports in an open blackhole window
  CrashHandler crash_handler_;
};

}  // namespace hostsim

#endif  // HOSTSIM_SIM_FAULT_INJECTOR_H
