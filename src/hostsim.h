// Umbrella header: the supported public surface of the simulator.
//
// Downstream consumers (examples/, bench/, external users) should include
// this single header instead of reaching into the internal directory
// layout — internal headers move freely between PRs, this one does not.
// The supported surface is:
//
//   EventLoop / Timer / TimerHandle   sim engine and scheduling API
//   ExperimentConfig + Experiment     configuration and one-shot runs
//   Cluster/Testbed + build_workload  manual topology assembly
//   Metrics / report tables           measurement output and printing
//   sweep::Campaign / runner          declarative experiment campaigns
//   InvariantChecker / Watchdog       end-of-run checking, liveness
//
// Everything else (net/, hw/, cpu/, mem/ internals) is implementation
// detail: reachable through these headers where the types leak into the
// surface (StackConfig toggles, CostModel fields), but with no stability
// promise of its own.
#ifndef HOSTSIM_HOSTSIM_H
#define HOSTSIM_HOSTSIM_H

#include "core/cluster.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/metrics.h"
#include "core/paper.h"
#include "core/patterns.h"
#include "core/report.h"
#include "core/serialize.h"
#include "core/testbed.h"
#include "sim/event_loop.h"
#include "sim/invariant_checker.h"
#include "sim/timer.h"
#include "sweep/campaign.h"
#include "sweep/campaigns.h"
#include "sweep/runner.h"

#endif  // HOSTSIM_HOSTSIM_H
