#include "workload/open_loop.h"

#include <algorithm>
#include <ostream>

#include "sim/contract.h"

namespace hostsim::workload {

void write_records_jsonl(const std::vector<RequestRecord>& records,
                         std::ostream& out) {
  for (const RequestRecord& r : records) {
    out << "{\"id\":" << r.id << ",\"arrival_ns\":" << r.arrival
        << ",\"dispatch_ns\":" << r.dispatch
        << ",\"first_byte_ns\":" << r.first_byte
        << ",\"completion_ns\":" << r.completion << ",\"bytes\":" << r.bytes
        << ",\"fan_out\":" << r.fan_out
        << ",\"redispatches\":" << r.redispatches
        << ",\"fresh_conn\":" << (r.fresh_conn ? "true" : "false") << "}\n";
  }
}

OpenLoopEngine::OpenLoopEngine(Cluster& cluster, const TrafficConfig& traffic,
                               int rx_core)
    : cluster_(&cluster),
      wl_(traffic.workload),
      rx_core_(rx_core),
      // Exactly three forks, fixed order — see the header comment.
      arrivals_(wl_, cluster.fork_rng()),
      sizes_(wl_, traffic.rpc_size, cluster.fork_rng()),
      churn_rng_(cluster.fork_rng()),
      obs_(cluster.observer()) {
  require(wl_.enabled, "open-loop pattern requires traffic.workload.enabled");
  require(cluster.num_hosts() >= 2, "open-loop needs a client and a backend");
  require(traffic.flows >= 1, "open-loop needs at least one connection slot");
  require(wl_.fan_out >= 1, "fan-out must be at least 1");
  require(wl_.churn_prob >= 0 && wl_.churn_prob <= 1,
          "churn probability must be in [0, 1]");
  const int cores = cluster.config().topo.num_cores();
  const int backends = cluster.num_hosts() - 1;
  slots_.resize(static_cast<std::size_t>(traffic.flows));
  echoes_.resize(static_cast<std::size_t>(traffic.flows));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ClientSlot& slot = slots_[i];
    slot.core = static_cast<int>(i) % cores;
    slot.backend = 1 + static_cast<int>(i) % backends;
    slot.thread = std::make_unique<Thread>(
        cluster.host(0).core(slot.core), "open-loop-client");
    slot.thread->set_body([this, i](Core& core, Thread& thread) {
      client_quantum(core, thread, i);
    });
    EchoSlot& echo = echoes_[i];
    echo.host = slot.backend;
    echo.thread = std::make_unique<Thread>(
        cluster.host(slot.backend).core(rx_core_), "open-loop-echo");
    echo.thread->set_body([this, i](Core& core, Thread& thread) {
      echo_quantum(core, thread, i);
    });
  }
}

Stack& OpenLoopEngine::client_stack() { return cluster_->host(0).stack(); }

void OpenLoopEngine::start() {
  for (int h = 1; h < cluster_->num_hosts(); ++h) {
    cluster_->host(h).stack().listen(
        rx_core_, wl_.listen_backlog,
        [this](Core&, TransportSocket& sock) { on_accept(sock); });
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) open_slot(i);
  schedule_next_arrival();
}

void OpenLoopEngine::open_slot(std::size_t i) {
  ClientSlot& slot = slots_[i];
  slot.up = false;
  slot.failed = false;
  slot.serves = 0;
  slot.opened_at = cluster_->shard_loop(0).now();
  const std::uint64_t generation = ++slot.generation;
  const int flow = cluster_->open_flow(
      {0, slot.core}, {slot.backend, rx_core_}, wl_.syn_retry,
      wl_.max_syn_retries, [this, i, generation](bool established) {
        on_established(i, generation, established);
      });
  slot.flow = flow;
  flow_to_slot_[flow] = i;
  ++conns_opened_;
  TransportSocket& sock = client_stack().socket(flow);
  slot.sock = &sock;
  sock.set_rx_waiter(slot.thread.get());
  sock.set_tx_waiter(slot.thread.get());
  sock.set_error_callback([this, i, flow](SocketError) {
    ClientSlot& s = slots_[i];
    if (s.flow != flow) return;  // a stale connection's last gasp
    s.up = false;
    s.failed = true;
    s.thread->notify();
  });
}

void OpenLoopEngine::on_established(std::size_t i, std::uint64_t generation,
                                    bool established) {
  ClientSlot& slot = slots_[i];
  if (slot.generation != generation) return;  // the slot moved on
  if (established) {
    slot.up = true;
    connect_latency_.record(cluster_->shard_loop(0).now() - slot.opened_at);
    if (slot.connect_span >= 0) {
      obs_->requests(0).finish(slot.connect_span,
                               cluster_->shard_loop(0).now());
      slot.connect_span = -1;
    }
    slot.thread->notify();
    return;
  }
  // SYN retry budget exhausted: the orphan client socket is still in the
  // table; the thread quantum aborts + destroys it and dials again.
  slot.failed = true;
  slot.thread->notify();
}

void OpenLoopEngine::on_accept(TransportSocket& sock) {
  auto it = flow_to_slot_.find(sock.flow());
  require(it != flow_to_slot_.end(), "accepted a flow the engine never opened");
  const std::size_t i = it->second;
  const int flow = sock.flow();
  EchoSlot& echo = echoes_[i];
  echo.sock = &sock;
  echo.flow = flow;
  echo.serves = 0;       // serve ordinals restart with the fresh flow
  echo.service_span = -1;
  sock.set_rx_waiter(echo.thread.get());
  sock.set_tx_waiter(echo.thread.get());
  // Note: `expected` is deliberately NOT cleared here — the client may
  // already have issued the first leaf (its push is ordered after the
  // server processed this connection's SYN, so it is never stale).
  sock.set_error_callback([this, i, flow](SocketError) {
    EchoSlot& e = echoes_[i];
    if (e.flow != flow) return;
    e.sock = nullptr;
    e.request_received = 0;
    e.response_pending = 0;
    e.expected.clear();
    e.service_span = -1;  // the half-served request died with the flow
  });
  sock.set_fin_callback([this, i, flow](Core&) {
    // Graceful churn close: the stack retires the socket right after
    // this returns.  The connection was quiescent, so there is no
    // partial request/response state worth keeping.
    EchoSlot& e = echoes_[i];
    if (e.flow != flow) return;
    e.sock = nullptr;
    e.request_received = 0;
    e.response_pending = 0;
    e.expected.clear();
  });
  echo.thread->notify();
}

void OpenLoopEngine::schedule_next_arrival() {
  cluster_->shard_loop(0).schedule_at(arrivals_.next(), [this] { on_arrival(); });
}

void OpenLoopEngine::on_arrival() {
  // Loop context, no CPU cost: the arrival comes from an external load
  // generator, not from the hosts under test.
  const Nanos now = cluster_->shard_loop(0).now();
  const std::uint64_t id = records_.size();
  RequestRecord record;
  record.id = id;
  record.arrival = now;
  record.fan_out = wl_.fan_out;
  records_.push_back(record);
  outstanding_.push_back(wl_.fan_out);
  // Root span for the whole fan-out tree, sampled on the request id (the
  // leaves issue later, from client quanta, and parent under it).
  std::uint64_t tid = 0;
  std::int32_t root = -1;
  if (obs_ != nullptr && obs_->tracing()) {
    obs::RequestTracer& tracer = obs_->requests(0);
    if (tracer.sampled(/*flow=*/-1, static_cast<std::int64_t>(id))) {
      tid = tracer.make_trace_id(-1, static_cast<std::int64_t>(id));
      root = tracer.start(obs::ReqKind::request, tid, 0, /*flow=*/-1,
                          "open_loop", /*attempt=*/0,
                          static_cast<std::int64_t>(id), /*bytes=*/0, now);
    }
  }
  trace_ids_.push_back(tid);
  root_spans_.push_back(root);
  for (int k = 0; k < wl_.fan_out; ++k) {
    const Bytes size = sizes_.next();
    records_[id].bytes += size;
    // Consecutive slots hit distinct backends (slot -> backend is
    // round-robin too), so a fan-out tree spans the cluster.
    ClientSlot& slot = slots_[cursor_ % slots_.size()];
    ++cursor_;
    slot.queue.push_back(Leaf{id, size});
    slot.thread->notify();
  }
  schedule_next_arrival();
}

void OpenLoopEngine::recover_slot(Core& core, Thread& thread, std::size_t i) {
  ClientSlot& slot = slots_[i];
  const Nanos now = core.loop().now();
  if (slot.attempt_span >= 0) {
    obs_->requests(0).finish(slot.attempt_span, now, /*ok=*/false);
    slot.attempt_span = -1;
  }
  if (slot.connect_span >= 0) {
    obs_->requests(0).finish(slot.connect_span, now, /*ok=*/false);
    slot.connect_span = -1;
  }
  if (slot.sock != nullptr) {
    if (!slot.sock->dead()) {
      // Connect failure: nothing was ever established, tear down the
      // half-open socket (fires the error callback; the flow guard
      // makes that a no-op once we reopen below).
      slot.sock->abort(core, SocketError::etimedout);
    }
    client_stack().destroy_socket(slot.flow);
  }
  flow_to_slot_.erase(slot.flow);
  slot.sock = nullptr;
  if (slot.active) {
    records_[slot.leaf.request].redispatches += 1;
    slot.queue.push_front(slot.leaf);
    slot.active = false;
    slot.request_pending = 0;
    slot.response_pending = 0;
    slot.first_byte_seen = false;
  }
  open_slot(i);
  // The redial is causally part of the requeued leaf's request: trace
  // the connect leg under that leaf's root.
  if (obs_ != nullptr && obs_->tracing() && !slot.queue.empty()) {
    const std::uint64_t id = slot.queue.front().request;
    if (trace_ids_[id] != 0) {
      obs::RequestTracer& tracer = obs_->requests(0);
      slot.connect_span = tracer.start(
          obs::ReqKind::connect, trace_ids_[id],
          tracer.span_id_of(root_spans_[id]), slot.flow, "open_loop",
          records_[id].redispatches, /*key=*/-1, /*bytes=*/0, now);
    }
  }
  thread.finish_quantum(/*more_work=*/false);
}

void OpenLoopEngine::client_quantum(Core& core, Thread& thread,
                                    std::size_t i) {
  ClientSlot& slot = slots_[i];
  if (slot.failed) {
    recover_slot(core, thread, i);
    return;
  }
  if (!slot.up || slot.sock == nullptr) {
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  TransportSocket& sock = *slot.sock;
  if (!slot.active) {
    if (slot.queue.empty()) {
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    slot.leaf = slot.queue.front();
    slot.queue.pop_front();
    slot.active = true;
    slot.first_byte_seen = false;
    slot.issued_at = core.loop().now();
    RequestRecord& r = records_[slot.leaf.request];
    if (r.dispatch < 0) r.dispatch = slot.issued_at;
    if (slot.serves == 0) r.fresh_conn = true;
    echoes_[i].expected.push_back(slot.leaf.size);
    slot.response_pending = slot.leaf.size;
    trace_leaf_issue(i, slot.issued_at);
    slot.request_pending = slot.leaf.size - sock.send(core, slot.leaf.size);
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  if (slot.request_pending > 0) {
    slot.request_pending -= sock.send(core, slot.request_pending);
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  const Bytes copied = sock.recv(core, slot.response_pending);
  if (copied > 0 && !slot.first_byte_seen) {
    slot.first_byte_seen = true;
    RequestRecord& r = records_[slot.leaf.request];
    if (r.first_byte < 0) r.first_byte = core.loop().now();
  }
  slot.response_pending -= std::min(copied, slot.response_pending);
  if (slot.response_pending > 0) {
    thread.finish_quantum(/*more_work=*/sock.readable() > 0);
    return;
  }
  complete_leaf(core, i);
  // complete_leaf may have churned the connection away; re-read state.
  thread.finish_quantum(
      /*more_work=*/!slot.queue.empty() ||
      (slot.sock != nullptr && slot.sock->readable() > 0));
}

void OpenLoopEngine::trace_leaf_issue(std::size_t i, Nanos now) {
  ClientSlot& slot = slots_[i];
  slot.attempt_span = -1;
  if (obs_ == nullptr || !obs_->tracing()) return;
  const std::uint64_t tid = trace_ids_[slot.leaf.request];
  if (tid == 0) return;
  obs::RequestTracer& tracer = obs_->requests(0);
  const std::int32_t attempt = records_[slot.leaf.request].redispatches;
  const std::int64_t key = static_cast<std::int64_t>(slot.serves);
  slot.attempt_span = tracer.start(
      obs::ReqKind::attempt, tid,
      tracer.span_id_of(root_spans_[slot.leaf.request]), slot.flow,
      "open_loop", attempt, key, slot.leaf.size, now);
  const std::int32_t xmit = tracer.start(
      obs::ReqKind::xmit, tid, tracer.span_id_of(slot.attempt_span),
      slot.flow, "open_loop", attempt, key, slot.leaf.size, now);
  if (xmit >= 0) {
    obs::RequestTracer* rt = &tracer;
    slot.sock->arm_tx_watch(slot.leaf.size,
                            [rt, xmit](Nanos at) { rt->finish(xmit, at); });
  }
}

void OpenLoopEngine::complete_leaf(Core& core, std::size_t i) {
  ClientSlot& slot = slots_[i];
  const Nanos now = core.loop().now();
  leaf_latency_.record(now - slot.issued_at);
  if (slot.attempt_span >= 0) {
    obs_->requests(0).finish(slot.attempt_span, now);
    slot.attempt_span = -1;
  }
  ++slot.serves;
  slot.active = false;
  const std::uint64_t id = slot.leaf.request;
  if (--outstanding_[static_cast<std::size_t>(id)] == 0) {
    RequestRecord& r = records_[id];
    r.completion = now;
    ++completed_requests_;
    latency_.record(now - r.arrival);
    if (obs_ != nullptr) {
      obs_->request_latency(0, "open_loop", now - r.arrival, now);
      if (obs_->tracing() && root_spans_[id] >= 0) {
        obs_->requests(0).finish(root_spans_[id], now);
        root_spans_[id] = -1;
      }
    }
  }
  if (wl_.churn_prob > 0 && churn_rng_.chance(wl_.churn_prob)) {
    TransportSocket& sock = *slot.sock;
    // close() needs a quiescent connection; an unacked tail (the
    // request's last ACK can trail the response) just skips this
    // churn opportunity.
    if (sock.send_queue_empty() && sock.readable() == 0 &&
        sock.ofo_bytes() == 0) {
      flow_to_slot_.erase(slot.flow);
      slot.sock = nullptr;
      slot.up = false;
      client_stack().close(core, slot.flow, wl_.time_wait);
      ++conns_closed_;
      open_slot(i);
    }
  }
}

void OpenLoopEngine::echo_quantum(Core& core, Thread& thread, std::size_t i) {
  EchoSlot& echo = echoes_[i];
  if (echo.sock == nullptr) {
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  TransportSocket& sock = *echo.sock;
  // Flush a response blocked on send-buffer space.
  if (echo.response_pending > 0) {
    echo.response_pending -= sock.send(core, echo.response_pending);
    if (echo.response_pending > 0) {
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    if (echo.service_span >= 0) {
      obs_->requests(echo.host).finish(echo.service_span, core.loop().now());
      echo.service_span = -1;
    }
  }
  bool more = false;
  if (!echo.expected.empty()) {
    const Bytes remaining = echo.expected.front() - echo.request_received;
    if (remaining > 0 && sock.readable() > 0) {
      echo.request_received += sock.recv(core, remaining);
    }
    if (echo.request_received >= echo.expected.front()) {
      const Bytes size = echo.expected.front();
      echo.expected.pop_front();
      echo.request_received -= size;
      if (obs_ != nullptr && obs_->tracing()) {
        // Recorded unconditionally (the root's sampling decision lives
        // on the client); unsampled service spans drop at the join.
        echo.service_span = obs_->requests(echo.host).start(
            obs::ReqKind::service, 0, 0, echo.flow, {}, /*attempt=*/0,
            echo.serves, size, core.loop().now());
      }
      ++echo.serves;
      echo.response_pending = size - sock.send(core, size);
      if (echo.response_pending == 0 && echo.service_span >= 0) {
        obs_->requests(echo.host).finish(echo.service_span, core.loop().now());
        echo.service_span = -1;
      }
      more = sock.readable() > 0;
    }
  }
  thread.finish_quantum(more);
}

void OpenLoopEngine::reset_window() {
  latency_.clear();
  leaf_latency_.clear();
  connect_latency_.clear();
}

void OpenLoopEngine::harvest(Nanos measure_start, Nanos measure_end,
                             Metrics& metrics) {
  metrics.has_workload = true;
  Metrics::WorkloadMetrics& w = metrics.workload;
  Histogram request_latency;
  Histogram queue_delay;
  Histogram first_byte;
  for (const RequestRecord& r : records_) {
    if (r.arrival < measure_start || r.arrival >= measure_end) continue;
    ++w.offered;
    w.redispatches += static_cast<std::uint64_t>(r.redispatches);
    if (r.completion >= 0) {
      ++w.completed;
      request_latency.record(r.completion - r.arrival);
      if (wl_.slo > 0 && r.completion - r.arrival > wl_.slo) {
        ++w.slo_violations;
      }
    } else {
      ++w.incomplete;
    }
    if (r.dispatch >= 0) queue_delay.record(r.dispatch - r.arrival);
    if (r.first_byte >= 0) first_byte.record(r.first_byte - r.arrival);
  }
  const double seconds = to_seconds(measure_end - measure_start);
  if (seconds > 0) {
    w.offered_rps = static_cast<double>(w.offered) / seconds;
    w.completed_rps = static_cast<double>(w.completed) / seconds;
  }
  w.latency_p50 = request_latency.percentile(0.5);
  w.latency_p95 = request_latency.percentile(0.95);
  w.latency_p99 = request_latency.percentile(0.99);
  w.latency_p999 = request_latency.percentile(0.999);
  w.queue_p50 = queue_delay.percentile(0.5);
  w.queue_p99 = queue_delay.percentile(0.99);
  w.first_byte_p99 = first_byte.percentile(0.99);
  w.connect_p99 = connect_latency_.percentile(0.99);
  w.leaf_p99 = leaf_latency_.percentile(0.99);
  w.fanout_leaves = leaf_latency_.count();
  w.conns_opened = conns_opened_;
  w.conns_closed = conns_closed_;
  for (int h = 0; h < cluster_->num_hosts(); ++h) {
    const ChurnStats& churn = cluster_->host(h).stack().churn();
    w.syns_sent += churn.syns_sent;
    w.syn_retries += churn.syn_retries;
    w.syns_received += churn.syns_received;
    w.listen_overflows += churn.listen_overflows;
    w.accepts += churn.accepts;
    w.connect_failures += churn.connect_failures;
    w.time_wait_entered += churn.time_wait_entered;
    w.time_wait_reaped += churn.time_wait_reaped;
    w.time_wait_peak = std::max(w.time_wait_peak, churn.time_wait_peak);
    w.socket_table_peak =
        std::max(w.socket_table_peak, churn.socket_table_peak);
  }
  metrics.workload_records = records_;
}

}  // namespace hostsim::workload
