// Per-request lifecycle record of the open-loop engine.  Kept
// dependency-free (units only) so core/metrics.h can embed a vector of
// these without pulling the engine in.
#ifndef HOSTSIM_WORKLOAD_REQUEST_RECORD_H
#define HOSTSIM_WORKLOAD_REQUEST_RECORD_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/units.h"

namespace hostsim::workload {

/// Lifecycle of one front-end request (arrival -> dispatch -> first byte
/// -> completion).  Timestamps are absolute simulated nanoseconds; -1
/// marks a stage the request never reached before the run ended.  With
/// fan-out > 1, `dispatch`/`first_byte` are the earliest over the leaves
/// and `completion` is the latest (response gated on the slowest leaf).
struct RequestRecord {
  std::uint64_t id = 0;
  Nanos arrival = 0;
  Nanos dispatch = -1;
  Nanos first_byte = -1;
  Nanos completion = -1;
  Bytes bytes = 0;  ///< total request bytes across all leaves
  int fan_out = 1;
  int redispatches = 0;  ///< leaves reissued after a connection died
  bool fresh_conn = false;  ///< some leaf paid a handshake first
};

/// Writes one JSON object per line (JSONL) for every record, in id
/// order — the input of the EXPERIMENTS.md percentile pipeline.
void write_records_jsonl(const std::vector<RequestRecord>& records,
                         std::ostream& out);

}  // namespace hostsim::workload

#endif  // HOSTSIM_WORKLOAD_REQUEST_RECORD_H
