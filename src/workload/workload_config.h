// Open-loop workload configuration (units only, no dependencies beyond
// sim/units.h) — embedded in TrafficConfig as `workload`.
//
// `enabled` is the master switch: with it false (the default, and the
// only state legacy patterns ever see) the workload section is omitted
// from the canonical config JSON, so every pre-existing config hash,
// sweep cache key, and baseline artifact stays byte-identical.  The
// engine itself only forks RNG streams when enabled, so run event
// sequences of legacy experiments are untouched too.
#ifndef HOSTSIM_WORKLOAD_WORKLOAD_CONFIG_H
#define HOSTSIM_WORKLOAD_WORKLOAD_CONFIG_H

#include <cstdint>
#include <string_view>

#include "sim/units.h"

namespace hostsim {

/// Request arrival process of the open-loop generator.
enum class ArrivalProcess : std::uint8_t {
  poisson,  ///< homogeneous Poisson at `rate_rps` (diurnal-modulated)
  mmpp,     ///< 2-state Markov-modulated Poisson: bursts of
            ///< rate_rps*burst_factor alternating with the base rate
};

/// Request size distribution of the open-loop generator.
enum class SizeDist : std::uint8_t {
  fixed,           ///< every request is traffic.rpc_size bytes
  lognormal,       ///< mean traffic.rpc_size, shape `lognormal_sigma`
  bounded_pareto,  ///< heavy tail on [size_min, size_max], `pareto_alpha`
};

std::string_view to_string(ArrivalProcess process);
std::string_view to_string(SizeDist dist);

struct WorkloadConfig {
  bool enabled = false;  ///< master switch (see header comment)

  // --- Arrivals -----------------------------------------------------------
  ArrivalProcess arrivals = ArrivalProcess::poisson;
  double rate_rps = 50'000;  ///< mean offered request rate
  /// MMPP burst state multiplies the base rate by this factor.
  double burst_factor = 4.0;
  Nanos burst_on_mean = 2 * kMillisecond;   ///< mean burst-state sojourn
  Nanos burst_off_mean = 8 * kMillisecond;  ///< mean calm-state sojourn
  /// Sinusoidal rate modulation: rate *= 1 + amplitude*sin(2*pi*t/period).
  /// Amplitude 0 (default) disables the diurnal curve.
  double diurnal_amplitude = 0.0;
  Nanos diurnal_period = 10 * kMillisecond;

  // --- Request sizes (request == response, echo semantics) ---------------
  SizeDist sizes = SizeDist::fixed;
  double lognormal_sigma = 1.0;  ///< sigma of ln(size)
  double pareto_alpha = 1.3;     ///< bounded-Pareto tail index
  Bytes size_min = 64;
  Bytes size_max = 256 * kKiB;

  // --- Connection churn ---------------------------------------------------
  /// Probability that a connection is closed (FIN -> TIME_WAIT) and
  /// re-opened through a fresh handshake after completing a request.
  double churn_prob = 0.0;
  Nanos time_wait = 1 * kMillisecond;  ///< TIME_WAIT residence per closed conn
  int listen_backlog = 64;  ///< server accept queue; SYNs beyond it drop
  Nanos syn_retry = 1 * kMillisecond;  ///< client SYN retransmit base timeout
  int max_syn_retries = 6;

  // --- Fan-out ------------------------------------------------------------
  /// Leaf RPCs per front-end request; the request completes when the
  /// slowest leaf completes (tail-at-scale amplification).
  int fan_out = 1;

  // --- SLO ----------------------------------------------------------------
  /// Per-request latency objective (arrival -> completion); 0 disables
  /// violation accounting.
  Nanos slo = 0;
};

}  // namespace hostsim

#endif  // HOSTSIM_WORKLOAD_WORKLOAD_CONFIG_H
