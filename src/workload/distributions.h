// Seed-deterministic random processes for the open-loop engine.
//
// Every sampler owns a forked Rng stream and consumes a fixed number of
// draws per sample in a fixed order, so a (config, seed) pair replays
// the exact arrival times and request sizes on every platform.
//
// Arrivals use thinning (Lewis & Shedler): candidate gaps are drawn from
// a homogeneous Poisson process at the rate envelope `lambda_max` and
// accepted with probability rate(t)/lambda_max, which makes the MMPP
// burst states and the diurnal curve exact without inverting their
// integrated-rate functions.
#ifndef HOSTSIM_WORKLOAD_DISTRIBUTIONS_H
#define HOSTSIM_WORKLOAD_DISTRIBUTIONS_H

#include "sim/rng.h"
#include "sim/units.h"
#include "workload/workload_config.h"

namespace hostsim::workload {

/// Arrival-time process: Poisson or 2-state MMPP, optionally modulated
/// by a diurnal sinusoid.  next() returns strictly increasing absolute
/// times.
class ArrivalSampler {
 public:
  ArrivalSampler(const WorkloadConfig& config, Rng rng);

  /// Absolute time of the next arrival after the previous one (the
  /// first call samples from t = `start`).
  Nanos next();

  /// Resets the clock origin (call once before the first next()).
  void seek(Nanos start) { t_ = start; }

 private:
  double rate_at(Nanos t);      ///< instantaneous rate in requests/sec
  void advance_state(Nanos t);  ///< lazily walk MMPP sojourns up to t

  WorkloadConfig config_;
  Rng rng_;
  Nanos t_ = 0;
  double lambda_max_ = 0;  ///< thinning envelope, requests/sec
  bool bursting_ = false;
  Nanos state_until_ = 0;  ///< current MMPP sojourn ends here
};

/// Request-size distribution: fixed / log-normal / bounded Pareto.
class SizeSampler {
 public:
  /// `mean_size` is TrafficConfig::rpc_size — the fixed size, and the
  /// mean of the log-normal mix.
  SizeSampler(const WorkloadConfig& config, Bytes mean_size, Rng rng);

  Bytes next();

 private:
  WorkloadConfig config_;
  Bytes mean_size_;
  Rng rng_;
  double lognormal_mu_ = 0;  ///< ln-mean chosen so E[size] == mean_size
};

}  // namespace hostsim::workload

#endif  // HOSTSIM_WORKLOAD_DISTRIBUTIONS_H
