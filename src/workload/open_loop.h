// Open-loop traffic engine (Pattern::open_loop).
//
// A closed-loop client (RpcClient) only issues a request after the
// previous response returns, so host slowdowns throttle the offered load
// and hide queueing: measured latency stays flat as the host saturates.
// An *open-loop* generator injects requests at externally scheduled
// arrival times regardless of completions — when the host falls behind,
// requests queue and tail latency explodes, which is what production SLO
// curves actually look like (and what the coordinated-omission critique
// of closed-loop benchmarking is about).
//
// Topology: the front-end client lives on host 0, backends on hosts
// 1..H-1.  The engine maintains a pool of `traffic.flows` connection
// slots (slot i -> backend 1 + i % (H-1), client core i % cores); each
// front-end request fans out into `fan_out` leaf RPCs round-robined over
// the pool, and completes when its slowest leaf completes.  Slots are
// serial per connection (ping-pong), so queueing shows up as per-slot
// backlogs — the open-loop queue.
//
// Connections are opened through the full SYN handshake (Cluster::
// open_flow / Stack::listen) and optionally churned: after a completed
// request, with probability `churn_prob`, the quiescent connection is
// closed (FIN -> TIME_WAIT) and re-opened under a fresh flow id, paying
// the handshake again.
//
// Determinism: the engine forks exactly three RNG streams from the
// loop's root generator, in a fixed order (arrivals, sizes, churn), and
// only when constructed — legacy patterns never touch it, so their event
// sequences replay bit-identically.
#ifndef HOSTSIM_WORKLOAD_OPEN_LOOP_H
#define HOSTSIM_WORKLOAD_OPEN_LOOP_H

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"
#include "core/metrics.h"
#include "cpu/scheduler.h"
#include "sim/stats.h"
#include "workload/distributions.h"
#include "workload/request_record.h"

namespace hostsim::workload {

class OpenLoopEngine {
 public:
  /// `rx_core`: the server application core on each backend host.
  OpenLoopEngine(Cluster& cluster, const TrafficConfig& traffic, int rx_core);

  /// Registers backend listeners, opens the connection pool, and
  /// schedules the first arrival.
  void start();

  /// Completed front-end requests, whole run (monotone — the harness
  /// takes a delta across the measurement window, like RpcClient).
  std::uint64_t completed() const { return completed_requests_; }
  /// Request latency (arrival -> completion) since the last reset.
  const Histogram& latency() const { return latency_; }
  /// Clears window-scoped histograms (start of the measurement window).
  void reset_window();

  /// Fills metrics.workload / has_workload / workload_records from the
  /// measurement window [measure_start, measure_end).
  void harvest(Nanos measure_start, Nanos measure_end, Metrics& metrics);

  const std::vector<RequestRecord>& records() const { return records_; }

 private:
  /// One leaf RPC: `request` indexes records_, `size` is the echo size.
  struct Leaf {
    std::uint64_t request = 0;
    Bytes size = 0;
  };

  /// One front-end connection slot on host 0.
  struct ClientSlot {
    int core = 0;     ///< host-0 application core
    int backend = 1;  ///< backend host index
    int flow = -1;
    TransportSocket* sock = nullptr;
    bool up = false;      ///< handshake completed
    bool failed = false;  ///< connection died; thread quantum recovers
    std::uint64_t generation = 0;  ///< bumped per open; guards callbacks
    Nanos opened_at = 0;
    std::uint64_t serves = 0;  ///< leaves served on the current connection
    std::deque<Leaf> queue;    ///< the open-loop backlog
    bool active = false;       ///< a leaf is being served
    Leaf leaf;                 ///< the active leaf
    Nanos issued_at = 0;
    Bytes request_pending = 0;
    Bytes response_pending = 0;
    bool first_byte_seen = false;
    std::int32_t attempt_span = -1;  ///< open leaf-attempt request span
    std::int32_t connect_span = -1;  ///< open reconnect span (traced leg)
    std::unique_ptr<Thread> thread;
  };

  /// The backend echo server bound to one slot's current connection.
  /// Expected request sizes arrive out-of-band (pushed by the client at
  /// issue time) — the same oracle abstraction as RpcServer's fixed
  /// rpc_size, generalized to per-request sizes.
  struct EchoSlot {
    int host = 0;  ///< backend host index (owns the service spans)
    int flow = -1;
    TransportSocket* sock = nullptr;
    std::deque<Bytes> expected;
    Bytes request_received = 0;
    Bytes response_pending = 0;
    std::int64_t serves = 0;  ///< requests served on this connection
    std::int32_t service_span = -1;
    std::unique_ptr<Thread> thread;
  };

  Stack& client_stack();
  void open_slot(std::size_t i);
  void on_established(std::size_t i, std::uint64_t generation,
                      bool established);
  void on_accept(TransportSocket& sock);
  void on_arrival();
  void schedule_next_arrival();
  void client_quantum(Core& core, Thread& thread, std::size_t i);
  void complete_leaf(Core& core, std::size_t i);
  void recover_slot(Core& core, Thread& thread, std::size_t i);
  void echo_quantum(Core& core, Thread& thread, std::size_t i);
  /// Opens the attempt + xmit spans for the leaf slot `i` is issuing.
  void trace_leaf_issue(std::size_t i, Nanos now);

  Cluster* cluster_;
  WorkloadConfig wl_;
  int rx_core_;
  ArrivalSampler arrivals_;
  SizeSampler sizes_;
  Rng churn_rng_;

  std::vector<ClientSlot> slots_;
  std::vector<EchoSlot> echoes_;
  std::unordered_map<int, std::size_t> flow_to_slot_;
  std::size_t cursor_ = 0;  ///< round-robin leaf placement

  std::vector<RequestRecord> records_;
  std::vector<int> outstanding_;  ///< per-request leaves not yet completed
  obs::Observer* obs_ = nullptr;  ///< the cluster's hub (may be null)
  std::vector<std::uint64_t> trace_ids_;   ///< per request; 0 = unsampled
  std::vector<std::int32_t> root_spans_;   ///< per request; -1 = none

  std::uint64_t completed_requests_ = 0;
  std::uint64_t conns_opened_ = 0;
  std::uint64_t conns_closed_ = 0;
  Histogram latency_;          ///< request latency (window-scoped)
  Histogram leaf_latency_;     ///< per-leaf latency (window-scoped)
  Histogram connect_latency_;  ///< handshake latency (window-scoped)
};

}  // namespace hostsim::workload

#endif  // HOSTSIM_WORKLOAD_OPEN_LOOP_H
