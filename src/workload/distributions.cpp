#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "sim/contract.h"

namespace hostsim {

std::string_view to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::poisson: return "poisson";
    case ArrivalProcess::mmpp: return "mmpp";
  }
  return "?";
}

std::string_view to_string(SizeDist dist) {
  switch (dist) {
    case SizeDist::fixed: return "fixed";
    case SizeDist::lognormal: return "lognormal";
    case SizeDist::bounded_pareto: return "bounded-pareto";
  }
  return "?";
}

}  // namespace hostsim

namespace hostsim::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

ArrivalSampler::ArrivalSampler(const WorkloadConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  require(config_.rate_rps > 0, "workload arrival rate must be positive");
  require(config_.diurnal_amplitude >= 0 && config_.diurnal_amplitude < 1,
          "diurnal amplitude must be in [0, 1)");
  double envelope = config_.rate_rps * (1.0 + config_.diurnal_amplitude);
  if (config_.arrivals == ArrivalProcess::mmpp) {
    require(config_.burst_factor >= 1, "MMPP burst factor must be >= 1");
    require(config_.burst_on_mean > 0 && config_.burst_off_mean > 0,
            "MMPP sojourn means must be positive");
    envelope *= config_.burst_factor;
  }
  lambda_max_ = envelope;
}

double ArrivalSampler::rate_at(Nanos t) {
  double rate = config_.rate_rps;
  if (config_.arrivals == ArrivalProcess::mmpp && bursting_) {
    rate *= config_.burst_factor;
  }
  if (config_.diurnal_amplitude > 0 && config_.diurnal_period > 0) {
    rate *= 1.0 + config_.diurnal_amplitude *
                      std::sin(kTwoPi * static_cast<double>(t) /
                               static_cast<double>(config_.diurnal_period));
  }
  return rate;
}

void ArrivalSampler::advance_state(Nanos t) {
  if (config_.arrivals != ArrivalProcess::mmpp) return;
  while (state_until_ <= t) {
    bursting_ = !bursting_;
    const Nanos mean =
        bursting_ ? config_.burst_on_mean : config_.burst_off_mean;
    state_until_ += rng_.exponential(mean);
  }
}

Nanos ArrivalSampler::next() {
  // Candidate gaps at the envelope rate; mean gap in nanoseconds.
  const Nanos mean_gap = std::max<Nanos>(
      1, static_cast<Nanos>(1e9 / lambda_max_));
  for (;;) {
    t_ += std::max<Nanos>(1, rng_.exponential(mean_gap));
    advance_state(t_);
    const double accept = rate_at(t_) / lambda_max_;
    if (rng_.next_double() < accept) return t_;
  }
}

SizeSampler::SizeSampler(const WorkloadConfig& config, Bytes mean_size,
                         Rng rng)
    : config_(config), mean_size_(mean_size), rng_(rng) {
  require(mean_size_ > 0, "workload mean size must be positive");
  require(config_.size_min > 0 && config_.size_max >= config_.size_min,
          "workload size bounds must satisfy 0 < min <= max");
  if (config_.sizes == SizeDist::lognormal) {
    require(config_.lognormal_sigma > 0, "lognormal sigma must be positive");
    // E[exp(mu + sigma Z)] = exp(mu + sigma^2/2) == mean_size.
    lognormal_mu_ = std::log(static_cast<double>(mean_size_)) -
                    config_.lognormal_sigma * config_.lognormal_sigma / 2;
  }
  if (config_.sizes == SizeDist::bounded_pareto) {
    require(config_.pareto_alpha > 0, "pareto alpha must be positive");
  }
}

Bytes SizeSampler::next() {
  switch (config_.sizes) {
    case SizeDist::fixed:
      return mean_size_;
    case SizeDist::lognormal: {
      // Box-Muller, always consuming exactly two uniforms per sample
      // (no spare caching — a fixed draw count keeps replay exact).
      const double u1 = 1.0 - rng_.next_double();  // (0, 1]
      const double u2 = rng_.next_double();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
      const double size =
          std::exp(lognormal_mu_ + config_.lognormal_sigma * z);
      return std::clamp(static_cast<Bytes>(size), config_.size_min,
                        config_.size_max);
    }
    case SizeDist::bounded_pareto: {
      const double u = rng_.next_double();
      const double lo = static_cast<double>(config_.size_min);
      const double hi = static_cast<double>(config_.size_max);
      const double alpha = config_.pareto_alpha;
      // Inverse CDF of the Pareto truncated to [lo, hi].
      const double x =
          lo / std::pow(1.0 - u * (1.0 - std::pow(lo / hi, alpha)),
                        1.0 / alpha);
      return std::clamp(static_cast<Bytes>(x), config_.size_min,
                        config_.size_max);
    }
  }
  return mean_size_;
}

}  // namespace hostsim::workload
