// Parallel campaign execution.
//
// Each grid point is an independent run_experiment() call — a pure
// function of its resolved config — with its own EventLoop, RNG, and
// testbed, so points can execute on any thread in any order and still
// produce bit-identical Metrics to a serial run.  Results are stored at
// the point's expansion index, which makes output ordering deterministic
// regardless of completion order.
#ifndef HOSTSIM_SWEEP_RUNNER_H
#define HOSTSIM_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "obs/obs_config.h"
#include "sweep/campaign.h"

namespace hostsim::sweep {

struct RunnerOptions {
  /// Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 0;
  /// Execution shards per simulated point (ExperimentConfig::shards);
  /// <= 0 keeps each point's own setting.  Like `jobs` and `obs`, this
  /// is an execution strategy: shards never enters config_hash, so the
  /// cache keys — and the artifacts — are identical at any value.
  int shards = 0;
  bool use_cache = true;
  std::string cache_dir = ".hostsim-cache";
  /// Progress callback, invoked under a lock as each point completes
  /// (in completion order, which is nondeterministic under jobs > 1).
  std::function<void(const CampaignPoint&, bool from_cache)> on_point;
  /// Observability applied to every *simulated* point (cache-served
  /// points write no artifacts — their obs output already exists or was
  /// never requested).  Per-point artifacts land in obs.out_dir named by
  /// the point's config hash, so parallel schedules produce identical
  /// files.  The obs section never enters config_hash, so enabling it
  /// cannot invalidate (or pollute) the cache.
  ObsConfig obs;
};

struct PointResult {
  CampaignPoint point;
  std::uint64_t config_hash = 0;
  bool from_cache = false;
  Metrics metrics;
};

struct CampaignResult {
  std::string campaign;
  std::string description;
  std::vector<PointResult> points;  ///< in campaign expansion order
  std::size_t cache_hits = 0;
  std::size_t simulated = 0;
};

/// Expands and executes `campaign`. Cached points are served from disk;
/// the rest are simulated on a pool of `options.jobs` threads.
CampaignResult run_campaign(const Campaign& campaign,
                            const RunnerOptions& options = {});

/// The effective worker count for a jobs setting (>= 1).
int resolve_jobs(int jobs);

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_RUNNER_H
