// Built-in campaign definitions for the paper's core figures — the
// single source of truth both the `hostsim_sweep` CLI and the thin
// figure binaries execute.
#ifndef HOSTSIM_SWEEP_CAMPAIGNS_H
#define HOSTSIM_SWEEP_CAMPAIGNS_H

#include <optional>
#include <string_view>
#include <vector>

#include "sweep/campaign.h"

namespace hostsim::sweep {

/// Every registered campaign, in presentation order.
std::vector<Campaign> builtin_campaigns();

/// Lookup by name; nullopt when unknown.
std::optional<Campaign> find_campaign(std::string_view name);

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_CAMPAIGNS_H
