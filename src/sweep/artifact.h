// Machine-readable campaign artifacts: one JSON and one CSV document per
// campaign, each embedding the per-point config hash, seed, and the
// source tree's git-describe, so any result can be traced back to the
// exact configuration (and code) that produced it.  The JSON document is
// also the regression-baseline format consumed by sweep/baseline.h.
#ifndef HOSTSIM_SWEEP_ARTIFACT_H
#define HOSTSIM_SWEEP_ARTIFACT_H

#include <string>

#include "sweep/runner.h"

namespace hostsim::sweep {

/// `git describe --always --dirty` of the working tree, or "unknown".
std::string git_describe();

/// Artifact JSON: {schema, campaign, git, points: [{label, config_hash,
/// seed, from_cache, metrics: {...}}]}.
std::string campaign_to_json(const CampaignResult& result,
                             const std::string& git_version);

/// Artifact CSV: `#`-comment preamble (campaign, git, schema), then one
/// row per point with label/seed/config-hash columns ahead of the full
/// metrics_csv_header() columns.  All fields are CSV-escaped.
std::string campaign_to_csv(const CampaignResult& result,
                            const std::string& git_version);

struct ArtifactPaths {
  std::string json;
  std::string csv;
};

/// Writes `<out_dir>/<campaign>.json` and `.csv`, creating the directory
/// as needed.  Aborts (contract) on I/O failure — artifacts are the
/// point of the run, so losing them is not a soft error.
ArtifactPaths write_campaign_artifacts(const CampaignResult& result,
                                       const std::string& out_dir);

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_ARTIFACT_H
