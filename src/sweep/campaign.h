// Declarative experiment campaigns: named axes over ExperimentConfig
// fields, expanded into a deterministic grid of resolved configurations.
//
// A Campaign is `base` config + axes; expansion is the cartesian product
// with the FIRST axis outermost (matching the nested loops the figure
// binaries historically used), so point order — and therefore artifact
// row order — is a pure function of the description.  Explicit point
// lists are just a campaign with one axis whose values are the points.
#ifndef HOSTSIM_SWEEP_CAMPAIGN_H
#define HOSTSIM_SWEEP_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"

namespace hostsim::sweep {

/// One labelled value on an axis: `apply` edits the config in place.
struct AxisValue {
  std::string label;
  std::function<void(ExperimentConfig&)> apply;
};

/// A named sweep dimension.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;

  /// Generic axis from (label, mutation) pairs.
  static Axis of(std::string name, std::vector<AxisValue> values);

  // Ready-made axes for the paper's common sweep dimensions.
  static Axis flows(std::vector<int> counts);
  static Axis seeds(std::vector<std::uint64_t> seeds);
  static Axis nic_ring(std::vector<int> sizes);
  static Axis rx_buffer(std::vector<Bytes> sizes);  ///< 0 = "autotune"
  static Axis mtu();                                ///< 1500 vs 9000 payload
  static Axis opt_ladder();  ///< StackConfig::opt_level 0..3 (fig. 3)
  static Axis loss_rates(std::vector<double> rates);
  static Axis fault_plans(std::vector<std::pair<std::string, FaultPlan>> plans);
  /// Cluster sizes: each value sets topology.num_hosts and routes the
  /// hosts through a switch (use_switch = true).
  static Axis num_hosts(std::vector<int> counts);
  static Axis cc_algos(std::vector<CcAlgo> algos);
  static Axis transports(std::vector<TransportKind> kinds);
};

/// One resolved grid point.
struct CampaignPoint {
  std::size_t index = 0;  ///< position in expansion order
  /// (axis name, value label) per axis, outermost first.
  std::vector<std::pair<std::string, std::string>> coordinates;
  ExperimentConfig config;

  /// "flows=8 ring=256", or "base" for an axis-less campaign.
  std::string label() const;
};

struct Campaign {
  std::string name;
  std::string description;
  ExperimentConfig base;
  std::vector<Axis> axes;

  std::size_t num_points() const;
  std::vector<CampaignPoint> expand() const;
};

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_CAMPAIGN_H
