#include "sweep/artifact.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/report.h"
#include "core/serialize.h"
#include "sim/contract.h"

namespace hostsim::sweep {

namespace fs = std::filesystem;

std::string git_describe() {
  FILE* pipe =
      ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128] = {};
  std::string out;
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

std::string campaign_to_json(const CampaignResult& result,
                             const std::string& git_version) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(static_cast<std::uint64_t>(kConfigSchemaVersion));
  w.key("campaign").value(result.campaign);
  w.key("description").value(result.description);
  w.key("git").value(git_version);
  w.key("cache_hits").value(static_cast<std::uint64_t>(result.cache_hits));
  w.key("simulated").value(static_cast<std::uint64_t>(result.simulated));
  std::string doc = w.str();
  doc += ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& point = result.points[i];
    if (i > 0) doc += ',';
    JsonWriter p;
    p.begin_object();
    p.key("label").value(point.point.label());
    p.key("config_hash").value(hash_hex(point.config_hash));
    p.key("seed").value(point.point.config.seed);
    p.key("from_cache").value(point.from_cache);
    doc += p.str();
    doc += ",\"metrics\":";
    doc += metrics_to_json(point.metrics);
    doc += '}';
  }
  doc += "]}";
  return doc;
}

std::string campaign_to_csv(const CampaignResult& result,
                            const std::string& git_version) {
  std::string csv;
  csv += "# hostsim campaign artifact\n";
  csv += "# campaign=" + result.campaign + "\n";
  csv += "# git=" + git_version + "\n";
  csv += "# schema=" + std::to_string(kConfigSchemaVersion) + "\n";
  csv += "# points=" + std::to_string(result.points.size()) +
         " cache_hits=" + std::to_string(result.cache_hits) +
         " simulated=" + std::to_string(result.simulated) + "\n";
  csv += "point,seed,config_hash," + metrics_csv_header() + "\n";
  for (const PointResult& point : result.points) {
    csv += csv_escape(point.point.label()) + "," +
           std::to_string(point.point.config.seed) + "," +
           hash_hex(point.config_hash) + "," +
           metrics_csv_row(point.metrics) + "\n";
  }
  return csv;
}

ArtifactPaths write_campaign_artifacts(const CampaignResult& result,
                                       const std::string& out_dir) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  require(!ec, "cannot create artifact directory");
  const std::string git_version = git_describe();
  ArtifactPaths paths;
  paths.json = (fs::path(out_dir) / (result.campaign + ".json")).string();
  paths.csv = (fs::path(out_dir) / (result.campaign + ".csv")).string();
  {
    std::ofstream out(paths.json, std::ios::trunc);
    out << campaign_to_json(result, git_version) << '\n';
    require(out.good(), "cannot write campaign JSON artifact");
  }
  {
    std::ofstream out(paths.csv, std::ios::trunc);
    out << campaign_to_csv(result, git_version);
    require(out.good(), "cannot write campaign CSV artifact");
  }
  return paths;
}

}  // namespace hostsim::sweep
