#include "sweep/baseline.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <optional>

#include "core/serialize.h"

namespace hostsim::sweep {

namespace {

/// Flattens a "metrics" JSON object into (name, value) pairs, dotted for
/// nesting ("sender_cycles.data_copy") and indexed for arrays
/// ("flows.0.gbps") — the namespace GateOptions::per_metric addresses.
void flatten(const JsonValue& value, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (value.kind()) {
    case JsonValue::Kind::number:
      out[prefix] = value.as_double();
      break;
    case JsonValue::Kind::boolean:
      out[prefix] = value.as_bool() ? 1.0 : 0.0;
      break;
    case JsonValue::Kind::object:
      for (const auto& [name, member] : value.members()) {
        flatten(member, prefix.empty() ? name : prefix + "." + name, out);
      }
      break;
    case JsonValue::Kind::array: {
      std::size_t index = 0;
      for (const JsonValue& item : value.items()) {
        flatten(item, prefix + "." + std::to_string(index++), out);
      }
      break;
    }
    default:
      break;  // strings and nulls are not gateable quantities
  }
}

struct ParsedPoint {
  std::string config_hash;
  std::map<std::string, double> metrics;
};

std::optional<std::map<std::string, ParsedPoint>> parse_artifact(
    const std::string& json, std::string* error, const char* which) {
  const std::optional<JsonValue> doc = JsonValue::parse(json);
  if (!doc || !doc->is_object()) {
    *error = std::string(which) + " artifact is not valid JSON";
    return std::nullopt;
  }
  const JsonValue* points = doc->find("points");
  if (points == nullptr || !points->is_array()) {
    *error = std::string(which) + " artifact has no points array";
    return std::nullopt;
  }
  std::map<std::string, ParsedPoint> parsed;
  for (const JsonValue& entry : points->items()) {
    const JsonValue* label = entry.find("label");
    const JsonValue* metrics = entry.find("metrics");
    if (label == nullptr || !label->is_string() || metrics == nullptr) {
      *error = std::string(which) + " artifact has a malformed point";
      return std::nullopt;
    }
    ParsedPoint point;
    if (const JsonValue* hash = entry.find("config_hash");
        hash != nullptr && hash->is_string()) {
      point.config_hash = hash->as_string();
    }
    flatten(*metrics, "", point.metrics);
    parsed.emplace(label->as_string(), std::move(point));
  }
  return parsed;
}

}  // namespace

GateReport gate_against_baseline(const std::string& result_json,
                                 const std::string& baseline_json,
                                 const GateOptions& options) {
  GateReport report;
  const auto result = parse_artifact(result_json, &report.error, "result");
  if (!result) return report;
  const auto baseline =
      parse_artifact(baseline_json, &report.error, "baseline");
  if (!baseline) return report;

  for (const auto& [label, base_point] : *baseline) {
    const auto it = result->find(label);
    if (it == result->end()) {
      report.violations.push_back(
          {label, "points", 0.0, 0.0, "point missing from result"});
      continue;
    }
    const ParsedPoint& new_point = it->second;
    ++report.points_compared;

    if (!options.allow_config_drift &&
        base_point.config_hash != new_point.config_hash) {
      report.violations.push_back(
          {label, "config_hash", 0.0, 0.0,
           "config hash drifted (" + base_point.config_hash + " -> " +
               new_point.config_hash +
               "); re-baseline or pass --allow-config-drift"});
    }

    for (const auto& [metric, expected] : base_point.metrics) {
      const auto cell = new_point.metrics.find(metric);
      if (cell == new_point.metrics.end()) {
        report.violations.push_back(
            {label, metric, expected, 0.0, "metric missing from result"});
        continue;
      }
      ++report.metrics_compared;
      const double actual = cell->second;
      const auto tol_it = options.per_metric.find(metric);
      const Tolerance& tol =
          tol_it != options.per_metric.end() ? tol_it->second
                                             : options.fallback;
      const double allowed = tol.abs + tol.rel * std::fabs(expected);
      const double deviation = std::fabs(actual - expected);
      if (deviation > allowed) {
        char detail[160];
        std::snprintf(detail, sizeof detail,
                      "%.17g -> %.17g (deviation %.3g > allowed %.3g)",
                      expected, actual, deviation, allowed);
        report.violations.push_back({label, metric, expected, actual, detail});
      }
    }
  }
  for (const auto& [label, point] : *result) {
    (void)point;
    if (baseline->find(label) == baseline->end()) {
      report.violations.push_back(
          {label, "points", 0.0, 0.0, "point absent from baseline"});
    }
  }
  return report;
}

std::string format_gate_report(const GateReport& report) {
  if (!report.error.empty()) return "gate ERROR: " + report.error + "\n";
  std::string out;
  if (report.ok()) {
    out = "gate OK: " + std::to_string(report.metrics_compared) +
          " metrics across " + std::to_string(report.points_compared) +
          " points within tolerance\n";
    return out;
  }
  out = "gate FAILED: " + std::to_string(report.violations.size()) +
        " violation(s) across " + std::to_string(report.points_compared) +
        " compared points\n";
  for (const GateViolation& v : report.violations) {
    out += "  [" + v.point + "] " + v.metric + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace hostsim::sweep
