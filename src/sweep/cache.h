// Persistent result cache for experiment runs.
//
// Key = config_hash(resolved ExperimentConfig), which covers every
// outcome-relevant field: the traffic/stack knobs, the cost-model
// calibration, the fault plan, and the seed — plus the serialization
// schema version.  run_experiment() is a pure function of that key, so
// a hit can be returned verbatim; re-running a campaign only simulates
// points whose configuration (or the simulator's schema) changed.
//
// Entries are one JSON file per key under the cache directory
// (`.hostsim-cache/` by default), written atomically (temp file +
// rename) so parallel runners never observe torn entries.  Runs that
// enable the flight recorder bypass the cache: traces are debugging
// artifacts and are not serialized.
#ifndef HOSTSIM_SWEEP_CACHE_H
#define HOSTSIM_SWEEP_CACHE_H

#include <cstdint>
#include <optional>
#include <string>

#include "core/config.h"
#include "core/metrics.h"

namespace hostsim::sweep {

class ResultCache {
 public:
  explicit ResultCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// True when `config` is cacheable at all (no flight recorder).
  static bool cacheable(const ExperimentConfig& config) {
    return config.stack.trace_capacity == 0;
  }

  /// Loads the cached Metrics for `config`, or nullopt on miss, schema
  /// mismatch, or a corrupt/unreadable entry (treated as a miss).
  std::optional<Metrics> load(const ExperimentConfig& config) const;

  /// Stores a run result. Creates the cache directory on first use;
  /// failures are silent (a broken cache only costs re-simulation).
  void store(const ExperimentConfig& config, const Metrics& metrics) const;

  /// Path of the entry file for `config` (exists or not).
  std::string entry_path(const ExperimentConfig& config) const;

  /// Deletes every entry; returns the number of files removed.
  std::size_t clear() const;

 private:
  std::string dir_;
};

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_CACHE_H
