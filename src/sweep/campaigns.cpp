#include "sweep/campaigns.h"

namespace hostsim::sweep {

namespace {

Campaign fig03_opt_ladder() {
  Campaign campaign;
  campaign.name = "fig03_opt_ladder";
  campaign.description =
      "fig 3(a-d): single flow, incremental optimization ladder";
  campaign.base.traffic.pattern = Pattern::single_flow;
  campaign.axes.push_back(Axis::opt_ladder());
  return campaign;
}

Campaign fig03e_cache_miss() {
  Campaign campaign;
  campaign.name = "fig03e_cache_miss";
  campaign.description =
      "fig 3(e): single flow over NIC rx ring size x TCP rx buffer";
  campaign.base.traffic.pattern = Pattern::single_flow;
  campaign.axes.push_back(
      Axis::nic_ring({128, 256, 512, 1024, 2048, 4096, 8192}));
  campaign.axes.push_back(Axis::rx_buffer(
      {3200 * kKiB, 6400 * kKiB, 12800 * kKiB, 0 /* autotune */}));
  return campaign;
}

Campaign flows_campaign(const char* name, const char* description,
                        Pattern pattern) {
  Campaign campaign;
  campaign.name = name;
  campaign.description = description;
  campaign.base.traffic.pattern = pattern;
  // Let every flow's DRS buffer open before measuring (see fig. 5/6/8).
  campaign.base.warmup = 25 * kMillisecond;
  campaign.axes.push_back(Axis::flows({1, 8, 16, 24}));
  return campaign;
}

Campaign fig09_loss() {
  Campaign campaign;
  campaign.name = "fig09_loss";
  campaign.description = "fig 9: single flow under in-network random loss";
  // Loss equilibria take CUBIC hundreds of milliseconds to reach.
  campaign.base.warmup = 150 * kMillisecond;
  campaign.base.duration = 250 * kMillisecond;
  campaign.axes.push_back(Axis::loss_rates({0.0, 1.5e-4, 1.5e-3, 1.5e-2}));
  return campaign;
}

Campaign fig10_rpc() {
  Campaign campaign;
  campaign.name = "fig10_rpc";
  campaign.description = "fig 10: RPC size sweep, 16:1 incast";
  campaign.base.traffic.pattern = Pattern::rpc_incast;
  campaign.base.traffic.flows = 16;
  Axis sizes;
  sizes.name = "rpc";
  for (Bytes size : {4 * kKiB, 16 * kKiB, 32 * kKiB, 64 * kKiB}) {
    sizes.values.push_back({std::to_string(size / kKiB) + "KB",
                            [size](ExperimentConfig& c) {
                              c.traffic.rpc_size = size;
                            }});
  }
  campaign.axes.push_back(std::move(sizes));
  return campaign;
}

Campaign mtu_ladder() {
  Campaign campaign;
  campaign.name = "mtu_ladder";
  campaign.description =
      "standard vs jumbo MTU across one-to-one flow counts";
  campaign.base.traffic.pattern = Pattern::one_to_one;
  campaign.base.warmup = 25 * kMillisecond;
  campaign.axes.push_back(Axis::mtu());
  campaign.axes.push_back(Axis::flows({1, 8, 16}));
  return campaign;
}

Campaign chaos_faults() {
  Campaign campaign;
  campaign.name = "chaos_faults";
  campaign.description =
      "fault-plan knobs x seeds: bursty loss, flaps, stalls, pressure";
  campaign.base.warmup = 15 * kMillisecond;
  campaign.base.duration = 40 * kMillisecond;

  FaultPlan bursty;
  bursty.gilbert_elliott = GilbertElliottConfig::for_average_loss(1.5e-3);
  FaultPlan flappy;
  flappy.link_flaps.push_back({20 * kMillisecond, 2 * kMillisecond});
  FaultPlan stalled;
  stalled.ring_stalls.push_back({25 * kMillisecond, 1 * kMillisecond, -1});
  FaultPlan squeezed;
  squeezed.pool_pressure.push_back({30 * kMillisecond, 2 * kMillisecond, 0.8});

  campaign.axes.push_back(Axis::fault_plans({{"none", FaultPlan{}},
                                             {"bursty", bursty},
                                             {"flap", flappy},
                                             {"stall", stalled},
                                             {"pressure", squeezed}}));
  campaign.axes.push_back(Axis::seeds({1, 2}));
  return campaign;
}

Campaign chaos_recovery() {
  Campaign campaign;
  campaign.name = "chaos_recovery";
  campaign.description =
      "crash/blackhole recovery: 8->1 RPC incast through a switch, "
      "mid-run host crash or port blackhole, retries on vs off";
  campaign.base.traffic.pattern = Pattern::rpc_incast;
  campaign.base.traffic.flows = 8;
  campaign.base.traffic.rpc_size = 16 * kKiB;
  campaign.base.topology.num_hosts = 9;
  campaign.base.topology.use_switch = true;
  campaign.base.topology.switch_buffer = 256 * kKiB;
  campaign.base.topology.switch_ecn_bytes = 64 * kKiB;
  campaign.base.warmup = 10 * kMillisecond;
  campaign.base.duration = 40 * kMillisecond;
  // Fail fast enough that a 5ms outage resolves within the run: ~2ms
  // deadlines, short capped backoff, and a low RTO threshold.
  campaign.base.stack.max_consecutive_rtos = 4;
  campaign.base.traffic.resilience.enabled = true;
  campaign.base.traffic.resilience.deadline = 2 * kMillisecond;
  campaign.base.traffic.resilience.backoff_base = 500 * kMicrosecond;
  campaign.base.traffic.resilience.backoff_cap = 4 * kMillisecond;
  campaign.base.traffic.resilience.breaker_threshold = 4;
  campaign.base.traffic.resilience.breaker_cooldown = 4 * kMillisecond;

  // Both faults open a 5ms window at t=20ms: the crash kills sender
  // host 0 outright; the blackhole silently swallows everything the
  // switch forwards toward it.
  FaultPlan crash;
  crash.host_crashes.push_back({20 * kMillisecond, 5 * kMillisecond, 0});
  FaultPlan blackhole;
  blackhole.port_blackholes.push_back(
      {20 * kMillisecond, 5 * kMillisecond, 0});
  campaign.axes.push_back(
      Axis::fault_plans({{"crash", crash}, {"blackhole", blackhole}}));

  Axis retries;
  retries.name = "retries";
  retries.values.push_back({"retries_on", [](ExperimentConfig& c) {
                              c.traffic.resilience.max_retries = 8;
                            }});
  retries.values.push_back({"retries_off", [](ExperimentConfig& c) {
                              c.traffic.resilience.max_retries = 0;
                            }});
  campaign.axes.push_back(std::move(retries));
  return campaign;
}

Campaign cluster_incast() {
  Campaign campaign;
  campaign.name = "cluster_incast";
  campaign.description =
      "fig 6 at cluster scale: N-1 sender hosts -> 1 receiver host "
      "through an output-queued switch, DCTCP vs CUBIC";
  campaign.base.traffic.pattern = Pattern::incast;
  campaign.base.traffic.flows = 8;
  campaign.base.warmup = 25 * kMillisecond;
  campaign.base.topology.use_switch = true;
  campaign.base.topology.switch_buffer = 256 * kKiB;
  campaign.base.topology.switch_ecn_bytes = 64 * kKiB;
  campaign.axes.push_back(Axis::num_hosts({3, 5, 9}));
  campaign.axes.push_back(Axis::cc_algos({CcAlgo::cubic, CcAlgo::dctcp}));
  return campaign;
}

Campaign transport_incast() {
  Campaign campaign;
  campaign.name = "transport_incast";
  campaign.description =
      "§3.3 receiver-driven claim: short-message incast under TCP vs the "
      "Homa-style message transport, sweeping fan-in";
  campaign.base.traffic.pattern = Pattern::rpc_incast;
  campaign.base.traffic.rpc_size = 16 * kKiB;
  campaign.axes.push_back(Axis::flows({4, 8, 16}));
  campaign.axes.push_back(
      Axis::transports({TransportKind::tcp, TransportKind::homa}));
  return campaign;
}

Campaign workload_matrix() {
  Campaign campaign;
  campaign.name = "workload_matrix";
  campaign.description =
      "open-loop SLO matrix: Poisson front-end on host 0 fanning out to "
      "4 backends through a switch, arrival rate x size mix x fan-out";
  campaign.base.traffic.pattern = Pattern::open_loop;
  campaign.base.traffic.flows = 8;
  campaign.base.traffic.rpc_size = 4 * kKiB;
  campaign.base.topology.num_hosts = 5;
  campaign.base.topology.use_switch = true;
  campaign.base.topology.switch_buffer = 256 * kKiB;
  campaign.base.topology.switch_ecn_bytes = 64 * kKiB;
  campaign.base.warmup = 10 * kMillisecond;
  campaign.base.duration = 25 * kMillisecond;
  campaign.base.traffic.workload.enabled = true;
  campaign.base.traffic.workload.churn_prob = 0.02;
  campaign.base.traffic.workload.slo = 500 * kMicrosecond;

  Axis rate;
  rate.name = "rate";
  rate.values.push_back({"20k", [](ExperimentConfig& c) {
                           c.traffic.workload.rate_rps = 20'000;
                         }});
  rate.values.push_back({"60k", [](ExperimentConfig& c) {
                           c.traffic.workload.rate_rps = 60'000;
                         }});
  campaign.axes.push_back(rate);

  Axis sizes;
  sizes.name = "sizes";
  sizes.values.push_back({"fixed4k", [](ExperimentConfig& c) {
                            c.traffic.workload.sizes = SizeDist::fixed;
                          }});
  sizes.values.push_back({"lognormal", [](ExperimentConfig& c) {
                            c.traffic.workload.sizes = SizeDist::lognormal;
                          }});
  sizes.values.push_back({"pareto", [](ExperimentConfig& c) {
                            c.traffic.workload.sizes =
                                SizeDist::bounded_pareto;
                          }});
  campaign.axes.push_back(sizes);

  Axis fan_out;
  fan_out.name = "fanout";
  fan_out.values.push_back(
      {"1", [](ExperimentConfig& c) { c.traffic.workload.fan_out = 1; }});
  fan_out.values.push_back(
      {"4", [](ExperimentConfig& c) { c.traffic.workload.fan_out = 4; }});
  campaign.axes.push_back(fan_out);
  return campaign;
}

}  // namespace

std::vector<Campaign> builtin_campaigns() {
  return {
      fig03_opt_ladder(),
      fig03e_cache_miss(),
      flows_campaign("fig05_one_to_one",
                     "fig 5: one-to-one, n sender cores -> n receiver cores",
                     Pattern::one_to_one),
      flows_campaign("fig06_incast",
                     "fig 6: incast, n sender cores -> 1 receiver core",
                     Pattern::incast),
      flows_campaign("fig07_outcast",
                     "fig 7: outcast, 1 sender core -> n receiver cores",
                     Pattern::outcast),
      flows_campaign("fig08_all_to_all", "fig 8: all-to-all, n x n flows",
                     Pattern::all_to_all),
      fig09_loss(),
      fig10_rpc(),
      mtu_ladder(),
      chaos_faults(),
      chaos_recovery(),
      cluster_incast(),
      transport_incast(),
      workload_matrix(),
  };
}

std::optional<Campaign> find_campaign(std::string_view name) {
  for (Campaign& campaign : builtin_campaigns()) {
    if (campaign.name == name) return std::move(campaign);
  }
  return std::nullopt;
}

}  // namespace hostsim::sweep
