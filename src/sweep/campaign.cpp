#include "sweep/campaign.h"

#include <cstdio>

#include "sim/contract.h"

namespace hostsim::sweep {

Axis Axis::of(std::string name, std::vector<AxisValue> values) {
  Axis axis;
  axis.name = std::move(name);
  axis.values = std::move(values);
  return axis;
}

Axis Axis::flows(std::vector<int> counts) {
  Axis axis;
  axis.name = "flows";
  for (int n : counts) {
    axis.values.push_back({std::to_string(n), [n](ExperimentConfig& c) {
                             c.traffic.flows = n;
                           }});
  }
  return axis;
}

Axis Axis::seeds(std::vector<std::uint64_t> seeds) {
  Axis axis;
  axis.name = "seed";
  for (std::uint64_t seed : seeds) {
    axis.values.push_back({std::to_string(seed), [seed](ExperimentConfig& c) {
                             c.seed = seed;
                           }});
  }
  return axis;
}

Axis Axis::nic_ring(std::vector<int> sizes) {
  Axis axis;
  axis.name = "ring";
  for (int size : sizes) {
    axis.values.push_back({std::to_string(size), [size](ExperimentConfig& c) {
                             c.stack.nic_ring_size = size;
                           }});
  }
  return axis;
}

Axis Axis::rx_buffer(std::vector<Bytes> sizes) {
  Axis axis;
  axis.name = "rxbuf";
  for (Bytes size : sizes) {
    const std::string label =
        size == 0 ? "autotune" : std::to_string(size / kKiB) + "KB";
    axis.values.push_back({label, [size](ExperimentConfig& c) {
                             c.stack.tcp_rx_buf = size;
                           }});
  }
  return axis;
}

Axis Axis::mtu() {
  Axis axis;
  axis.name = "mtu";
  axis.values.push_back(
      {"1500", [](ExperimentConfig& c) { c.stack.jumbo = false; }});
  axis.values.push_back(
      {"9000", [](ExperimentConfig& c) { c.stack.jumbo = true; }});
  return axis;
}

Axis Axis::opt_ladder() {
  Axis axis;
  axis.name = "opts";
  for (int level = 0; level <= 3; ++level) {
    // Labels must be resolvable without a config, so bake them in here
    // (they match StackConfig::label() for each ladder rung).
    axis.values.push_back({StackConfig::opt_level(level).label(),
                           [level](ExperimentConfig& c) {
                             c.stack = StackConfig::opt_level(level);
                           }});
  }
  return axis;
}

Axis Axis::loss_rates(std::vector<double> rates) {
  Axis axis;
  axis.name = "loss";
  for (double rate : rates) {
    char label[32];
    std::snprintf(label, sizeof label, "%g", rate);
    axis.values.push_back({label, [rate](ExperimentConfig& c) {
                             c.loss_rate = rate;
                           }});
  }
  return axis;
}

Axis Axis::fault_plans(std::vector<std::pair<std::string, FaultPlan>> plans) {
  Axis axis;
  axis.name = "faults";
  for (auto& [label, plan] : plans) {
    axis.values.push_back({label, [plan](ExperimentConfig& c) {
                             c.faults = plan;
                           }});
  }
  return axis;
}

Axis Axis::num_hosts(std::vector<int> counts) {
  Axis axis;
  axis.name = "hosts";
  for (int n : counts) {
    axis.values.push_back({std::to_string(n), [n](ExperimentConfig& c) {
                             c.topology.num_hosts = n;
                             c.topology.use_switch = true;
                           }});
  }
  return axis;
}

Axis Axis::cc_algos(std::vector<CcAlgo> algos) {
  Axis axis;
  axis.name = "cc";
  for (CcAlgo algo : algos) {
    axis.values.push_back({std::string(to_string(algo)),
                           [algo](ExperimentConfig& c) {
                             c.stack.cc = algo;
                           }});
  }
  return axis;
}

Axis Axis::transports(std::vector<TransportKind> kinds) {
  Axis axis;
  axis.name = "transport";
  for (TransportKind kind : kinds) {
    axis.values.push_back({std::string(to_string(kind)),
                           [kind](ExperimentConfig& c) {
                             c.stack.transport.kind = kind;
                           }});
  }
  return axis;
}

std::string CampaignPoint::label() const {
  if (coordinates.empty()) return "base";
  std::string label;
  for (const auto& [axis, value] : coordinates) {
    if (!label.empty()) label += ' ';
    label += axis + "=" + value;
  }
  return label;
}

std::size_t Campaign::num_points() const {
  std::size_t n = 1;
  for (const Axis& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<CampaignPoint> Campaign::expand() const {
  for (const Axis& axis : axes) {
    require(!axis.values.empty(), "campaign axis must have values");
  }
  std::vector<CampaignPoint> points;
  points.reserve(num_points());
  std::vector<std::size_t> cursor(axes.size(), 0);
  while (true) {
    CampaignPoint point;
    point.index = points.size();
    point.config = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const AxisValue& value = axes[a].values[cursor[a]];
      point.coordinates.emplace_back(axes[a].name, value.label);
      value.apply(point.config);
    }
    points.push_back(std::move(point));
    // Odometer increment, last axis fastest (first axis outermost).
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++cursor[a] < axes[a].values.size()) break;
      cursor[a] = 0;
      if (a == 0) return points;
    }
    if (axes.empty()) return points;
  }
}

}  // namespace hostsim::sweep
