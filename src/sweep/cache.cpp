#include "sweep/cache.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "core/serialize.h"

namespace hostsim::sweep {

namespace fs = std::filesystem;

std::string ResultCache::entry_path(const ExperimentConfig& config) const {
  return (fs::path(dir_) / (hash_hex(config_hash(config)) + ".json"))
      .string();
}

std::optional<Metrics> ResultCache::load(const ExperimentConfig& config) const {
  if (!cacheable(config)) return std::nullopt;
  std::ifstream in(entry_path(config));
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  const std::optional<JsonValue> doc = JsonValue::parse(text.str());
  if (!doc) return std::nullopt;
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->as_u64() != kConfigSchemaVersion) {
    return std::nullopt;
  }
  // The filename already encodes the hash; re-check the embedded copy so
  // a renamed or hand-edited entry can never masquerade as another run.
  const JsonValue* hash = doc->find("config_hash");
  if (hash == nullptr || hash->as_string() != hash_hex(config_hash(config))) {
    return std::nullopt;
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr) return std::nullopt;
  return metrics_from_json(*metrics);
}

void ResultCache::store(const ExperimentConfig& config,
                        const Metrics& metrics) const {
  if (!cacheable(config)) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;

  JsonWriter w;
  w.begin_object();
  w.key("schema").value(static_cast<std::uint64_t>(kConfigSchemaVersion));
  w.key("config_hash").value(hash_hex(config_hash(config)));
  w.key("config_json").value(config_to_json(config));
  // Splice the pre-rendered metrics object in verbatim: it is canonical
  // JSON already, and reusing it keeps cache round-trips byte-stable.
  std::string doc = w.str();
  doc += ",\"metrics\":";
  doc += metrics_to_json(metrics);
  doc += '}';

  const fs::path final_path = entry_path(config);
  // Unique temp per writer thread so parallel stores of the same key
  // never interleave; rename() is atomic within a directory.
  const fs::path tmp_path =
      final_path.string() + ".tmp" +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return;
    out << doc;
    if (!out) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

std::size_t ResultCache::clear() const {
  std::error_code ec;
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".json" &&
        fs::remove(entry.path(), ec)) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace hostsim::sweep
