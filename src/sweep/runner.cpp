#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "core/experiment.h"
#include "core/serialize.h"
#include "sweep/cache.h"

namespace hostsim::sweep {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

CampaignResult run_campaign(const Campaign& campaign,
                            const RunnerOptions& options) {
  CampaignResult result;
  result.campaign = campaign.name;
  result.description = campaign.description;

  const std::vector<CampaignPoint> points = campaign.expand();
  result.points.resize(points.size());

  const ResultCache cache(options.cache_dir);
  std::mutex progress_mutex;
  const auto report = [&](const CampaignPoint& point, bool from_cache) {
    if (!options.on_point) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    options.on_point(point, from_cache);
  };

  // Cache probe pass (serial: small files, and it keeps hit accounting
  // simple); only misses go to the worker pool.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult& slot = result.points[i];
    slot.point = points[i];
    slot.config_hash = config_hash(points[i].config);
    if (options.use_cache) {
      if (std::optional<Metrics> cached = cache.load(points[i].config)) {
        slot.metrics = std::move(*cached);
        slot.from_cache = true;
        ++result.cache_hits;
        report(points[i], /*from_cache=*/true);
        continue;
      }
    }
    pending.push_back(i);
  }
  result.simulated = pending.size();

  const auto simulate = [&](std::size_t i) {
    PointResult& slot = result.points[i];
    // Each call builds a private EventLoop/RNG/testbed from the resolved
    // config, so concurrent points share no mutable state.
    ExperimentConfig config = slot.point.config;
    if (options.shards > 0) config.shards = options.shards;
    if (options.obs.enabled()) {
      config.obs = options.obs;
      // Artifact names keyed by config hash: stable across schedules,
      // unique per point.
      config.obs.out_stem = hash_hex(slot.config_hash);
    }
    slot.metrics = run_experiment(config);
    // Stored under the *canonical* config (obs never enters the hash,
    // and obs_stages never enters metrics_to_json, so instrumented and
    // plain runs share one cache entry with identical bytes).
    if (options.use_cache) cache.store(slot.point.config, slot.metrics);
    report(slot.point, /*from_cache=*/false);
  };

  const int jobs = resolve_jobs(options.jobs);
  if (jobs <= 1 || pending.size() <= 1) {
    for (std::size_t i : pending) simulate(i);
    return result;
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= pending.size()) return;
      simulate(pending[slot]);
    }
  };
  std::vector<std::thread> threads;
  const std::size_t num_workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), pending.size());
  threads.reserve(num_workers);
  for (std::size_t t = 0; t < num_workers; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return result;
}

}  // namespace hostsim::sweep
