// Regression gate: compares a campaign artifact (sweep/artifact.h JSON)
// against a checked-in baseline of the same format, metric by metric,
// with per-metric tolerances.  Intended use: regenerate a campaign after
// a change, gate against `baselines/<campaign>.json`, and fail the merge
// (nonzero exit from hostsim_sweep) on any out-of-tolerance drift.
#ifndef HOSTSIM_SWEEP_BASELINE_H
#define HOSTSIM_SWEEP_BASELINE_H

#include <map>
#include <string>
#include <vector>

namespace hostsim::sweep {

struct Tolerance {
  double rel = 0.0;  ///< allowed relative deviation, e.g. 0.02 = ±2%
  double abs = 0.0;  ///< absolute slack added on top (floors tiny values)
};

struct GateOptions {
  /// Tolerance for any metric without a per-metric override.  The
  /// simulator is deterministic, so the default demands near-exactness;
  /// widen per metric (or via --rel) when gating across code changes
  /// that intentionally move results.
  Tolerance fallback{0.0, 1e-9};
  std::map<std::string, Tolerance> per_metric;
  /// Accept points whose config hash differs from the baseline's (e.g.
  /// after an intentional cost-model recalibration, before re-baselining).
  bool allow_config_drift = false;
};

struct GateViolation {
  std::string point;   ///< campaign point label
  std::string metric;  ///< flat metric name, or "config_hash" / "points"
  double baseline = 0.0;
  double actual = 0.0;
  std::string detail;  ///< human-readable one-liner
};

struct GateReport {
  std::vector<GateViolation> violations;
  std::size_t points_compared = 0;
  std::size_t metrics_compared = 0;
  std::string error;  ///< non-empty when an input failed to parse

  bool ok() const { return error.empty() && violations.empty(); }
};

/// Diffs two artifact JSON documents (result vs baseline).  Points are
/// matched by label; missing, extra, or config-drifted points violate,
/// as does any metric outside tolerance.
GateReport gate_against_baseline(const std::string& result_json,
                                 const std::string& baseline_json,
                                 const GateOptions& options = {});

/// Multi-line human-readable report ("gate OK ..." / one violation per
/// line), suitable for printing verbatim.
std::string format_gate_report(const GateReport& report);

}  // namespace hostsim::sweep

#endif  // HOSTSIM_SWEEP_BASELINE_H
