#include "app/rpc_app.h"

#include <algorithm>

namespace hostsim {

RpcClient::RpcClient(Core& core, TransportSocket& socket, Bytes rpc_size)
    : socket_(&socket), rpc_size_(rpc_size), thread_(core, "rpc-client") {
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    // Finish sending a partially accepted request first.
    if (request_pending_ > 0) {
      request_pending_ -= socket_->send(c, request_pending_);
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    if (response_pending_ == 0) {
      // Issue the next request.
      response_pending_ = rpc_size_;
      issued_at_ = c.loop().now();
      request_pending_ = rpc_size_ - socket_->send(c, rpc_size_);
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    const Bytes copied = socket_->recv(c, response_pending_);
    response_pending_ -= std::min(copied, response_pending_);
    if (response_pending_ == 0) {
      ++completed_;
      latency_.record(c.loop().now() - issued_at_);
      // Ping-pong: immediately send the next request.
      thread.finish_quantum(/*more_work=*/true);
    } else {
      thread.finish_quantum(/*more_work=*/socket_->readable() > 0);
    }
  });
}

void RpcServer::rebind(TransportSocket& socket) {
  socket_ = &socket;
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  request_received_ = 0;
  response_pending_ = 0;
}

RpcServer::RpcServer(Core& core, TransportSocket& socket, Bytes rpc_size)
    : socket_(&socket), rpc_size_(rpc_size), thread_(core, "rpc-server") {
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    // Flush a response blocked on send-buffer space.
    if (response_pending_ > 0) {
      response_pending_ -= socket_->send(c, response_pending_);
      if (response_pending_ > 0) {
        thread.finish_quantum(/*more_work=*/false);
        return;
      }
    }
    if (socket_->readable() > 0) {
      request_received_ += socket_->recv(c, rpc_size_);
    }
    bool more = false;
    if (request_received_ >= rpc_size_) {
      request_received_ -= rpc_size_;
      ++served_;
      response_pending_ = rpc_size_ - socket_->send(c, rpc_size_);
      more = request_received_ >= rpc_size_ || socket_->readable() > 0;
    }
    thread.finish_quantum(more);
  });
}

}  // namespace hostsim
