#include "app/rpc_app.h"

#include <algorithm>

namespace hostsim {

RpcClient::RpcClient(Core& core, TransportSocket& socket, Bytes rpc_size)
    : socket_(&socket), rpc_size_(rpc_size), thread_(core, "rpc-client") {
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    // Finish sending a partially accepted request first.
    if (request_pending_ > 0) {
      request_pending_ -= socket_->send(c, request_pending_);
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    if (response_pending_ == 0) {
      // Issue the next request.
      response_pending_ = rpc_size_;
      issued_at_ = c.loop().now();
      trace_issue(issued_at_);
      request_pending_ = rpc_size_ - socket_->send(c, rpc_size_);
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    const Bytes copied = socket_->recv(c, response_pending_);
    response_pending_ -= std::min(copied, response_pending_);
    if (response_pending_ == 0) {
      ++completed_;
      const Nanos now = c.loop().now();
      latency_.record(now - issued_at_);
      if (obs_ != nullptr) {
        obs_->request_latency(host_, "rpc", now - issued_at_, now);
        if (obs_->tracing()) {
          obs::RequestTracer& tracer = obs_->requests(host_);
          tracer.finish(attempt_span_, now);
          tracer.finish(req_span_, now);
          attempt_span_ = req_span_ = -1;
        }
      }
      // Ping-pong: immediately send the next request.
      thread.finish_quantum(/*more_work=*/true);
    } else {
      thread.finish_quantum(/*more_work=*/socket_->readable() > 0);
    }
  });
}

void RpcClient::trace_issue(Nanos now) {
  req_span_ = attempt_span_ = -1;
  if (obs_ == nullptr || !obs_->tracing()) return;
  obs::RequestTracer& tracer = obs_->requests(host_);
  const int flow = socket_->flow();
  const std::int64_t ordinal = issue_ordinal_++;
  if (!tracer.sampled(flow, ordinal)) return;
  const std::uint64_t tid = tracer.make_trace_id(flow, ordinal);
  req_span_ = tracer.start(obs::ReqKind::request, tid, 0, flow, "rpc",
                           /*attempt=*/0, ordinal, rpc_size_, now);
  attempt_span_ =
      tracer.start(obs::ReqKind::attempt, tid, tracer.span_id_of(req_span_),
                   flow, "rpc", /*attempt=*/0, ordinal, rpc_size_, now);
  const std::int32_t xmit =
      tracer.start(obs::ReqKind::xmit, tid, tracer.span_id_of(attempt_span_),
                   flow, "rpc", /*attempt=*/0, ordinal, rpc_size_, now);
  if (xmit >= 0) {
    obs::RequestTracer* rt = &tracer;
    socket_->arm_tx_watch(rpc_size_, [rt, xmit](Nanos at) {
      rt->finish(xmit, at);
    });
  }
}

void RpcServer::rebind(TransportSocket& socket) {
  socket_ = &socket;
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  request_received_ = 0;
  response_pending_ = 0;
  serve_ordinal_ = 0;
  service_span_ = -1;  // the half-served request died with the old socket
}

void RpcServer::finish_service(Nanos now) {
  if (service_span_ < 0) return;
  obs_->requests(host_).finish(service_span_, now);
  service_span_ = -1;
}

RpcServer::RpcServer(Core& core, TransportSocket& socket, Bytes rpc_size)
    : socket_(&socket), rpc_size_(rpc_size), thread_(core, "rpc-server") {
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    // Flush a response blocked on send-buffer space.
    if (response_pending_ > 0) {
      response_pending_ -= socket_->send(c, response_pending_);
      if (response_pending_ > 0) {
        thread.finish_quantum(/*more_work=*/false);
        return;
      }
      finish_service(c.loop().now());
    }
    if (socket_->readable() > 0) {
      request_received_ += socket_->recv(c, rpc_size_);
    }
    bool more = false;
    if (request_received_ >= rpc_size_) {
      request_received_ -= rpc_size_;
      ++served_;
      if (obs_ != nullptr && obs_->tracing()) {
        obs::RequestTracer& tracer = obs_->requests(host_);
        const std::int64_t ordinal = serve_ordinal_++;
        // Same pure-hash decision the client made for this (flow,
        // ordinal): trace context propagates without any in-band bytes.
        if (tracer.sampled(socket_->flow(), ordinal)) {
          service_span_ = tracer.start(obs::ReqKind::service, 0, 0,
                                       socket_->flow(), {}, /*attempt=*/0,
                                       ordinal, rpc_size_, c.loop().now());
        }
      }
      response_pending_ = rpc_size_ - socket_->send(c, rpc_size_);
      if (response_pending_ == 0) finish_service(c.loop().now());
      more = request_received_ >= rpc_size_ || socket_->readable() > 0;
    }
    thread.finish_quantum(more);
  });
}

}  // namespace hostsim
