#include "app/resilient_rpc.h"

#include <algorithm>
#include <utility>

#include "sim/contract.h"

namespace hostsim {

ResilientRpcClient::ResilientRpcClient(Core& core, TransportSocket& socket,
                                       Bytes rpc_size,
                                       const RpcResilienceConfig& policy,
                                       Rng rng, ReconnectFn reconnect)
    : socket_(&socket),
      rpc_size_(rpc_size),
      policy_(policy),
      rng_(rng),
      reconnect_(std::move(reconnect)),
      thread_(core, "rpc-client"),
      deadline_timer_(core.loop(), [this] { on_deadline(); }),
      backoff_timer_(core.loop(), [this] {
        waiting_backoff_ = false;
        if (backoff_span_ >= 0) {
          obs_->requests(host_).finish(backoff_span_, loop_->now());
          backoff_span_ = -1;
        }
        thread_.notify();
      }),
      loop_(&core.loop()) {
  require(policy_.deadline > 0, "resilient client needs a deadline");
  require(policy_.max_retries >= 0, "retry budget must be non-negative");
  require(static_cast<bool>(reconnect_), "resilient client needs reconnect");
  bind_socket();
  thread_.set_body(
      [this](Core& c, Thread& thread) { run_quantum(c, thread); });
}

void ResilientRpcClient::enable_driver_mode(
    std::function<void(bool ok)> on_complete) {
  require(attempt_ == 0 && response_pending_ == 0 &&
              counters_.completed == 0,
          "enable driver mode before the first request issues");
  driver_mode_ = true;
  on_complete_ = std::move(on_complete);
}

void ResilientRpcClient::submit() {
  require(driver_mode_,
          "submit() needs driver mode: the closed-loop client issues its "
          "own requests and a second writer would desync the echo framing");
  ++pending_submissions_;
  thread_.notify();
}

void ResilientRpcClient::bind_socket() {
  socket_->set_rx_waiter(&thread_);
  socket_->set_tx_waiter(&thread_);
  socket_->set_error_callback([this](SocketError error) {
    if (handling_failure_) return;  // a teardown we initiated ourselves
    conn_error_ = error;
    failure_pending_ = true;
    thread_.notify();
  });
}

void ResilientRpcClient::on_deadline() {
  if (response_pending_ == 0) return;  // the response landed in time
  failure_pending_ = true;
  thread_.notify();
}

void ResilientRpcClient::run_quantum(Core& c, Thread& thread) {
  if (waiting_backoff_) {
    // Spurious wakeup (e.g. late data on the old connection's waiters)
    // while backing off: stay blocked until the timer fires.
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  if (failure_pending_) {
    failure_pending_ = false;
    thread.finish_quantum(handle_failure(c));
    return;
  }
  // Finish sending a partially accepted request first.
  if (request_pending_ > 0) {
    request_pending_ -= socket_->send(c, request_pending_);
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  if (response_pending_ == 0) {
    if (driver_mode_ && attempt_ == 0 && pending_submissions_ == 0) {
      // Open loop: nothing queued, wait for the next submit().
      thread.finish_quantum(/*more_work=*/false);
      return;
    }
    // Issue the next attempt (a fresh request when attempt_ is 0).
    if (attempt_ == 0) {
      first_issued_at_ = c.loop().now();
      if (driver_mode_) --pending_submissions_;
    }
    ++attempt_;
    response_pending_ = rpc_size_;
    trace_attempt(c.loop().now());
    request_pending_ = rpc_size_ - socket_->send(c, rpc_size_);
    deadline_timer_.arm_after(policy_.deadline);
    thread.finish_quantum(/*more_work=*/false);
    return;
  }
  const Bytes copied = socket_->recv(c, response_pending_);
  response_pending_ -= std::min(copied, response_pending_);
  if (response_pending_ == 0) {
    deadline_timer_.cancel();
    ++counters_.completed;
    const Nanos done_at = c.loop().now();
    latency_.record(done_at - first_issued_at_);
    if (obs_ != nullptr) {
      obs_->request_latency(host_, "rpc_resilient", done_at - first_issued_at_,
                            done_at);
      if (obs_->tracing()) {
        obs::RequestTracer& tracer = obs_->requests(host_);
        tracer.finish(attempt_span_, done_at);
        tracer.finish(root_span_, done_at);
        attempt_span_ = root_span_ = -1;
        trace_id_ = 0;
      }
    }
    attempt_ = 0;
    consecutive_failures_ = 0;  // closes a half-open breaker
    if (driver_mode_) {
      if (on_complete_) on_complete_(/*ok=*/true);
      thread.finish_quantum(/*more_work=*/pending_submissions_ > 0);
      return;
    }
    // Ping-pong: immediately send the next request.
    thread.finish_quantum(/*more_work=*/true);
  } else {
    thread.finish_quantum(/*more_work=*/socket_->readable() > 0);
  }
}

bool ResilientRpcClient::handle_failure(Core& c) {
  deadline_timer_.cancel();
  if (conn_error_ == SocketError::econnreset) {
    ++counters_.resets;
  } else {
    ++counters_.timeouts;  // deadline expiry or an ETIMEDOUT abort
  }
  conn_error_ = SocketError::none;
  ++consecutive_failures_;

  const bool traced = obs_ != nullptr && obs_->tracing();
  if (traced) {
    obs_->requests(host_).finish(attempt_span_, c.loop().now(), /*ok=*/false);
    attempt_span_ = -1;
  }

  // The outstanding request cannot be salvaged: retrying over the same
  // byte stream would desynchronize the echo framing, so every failed
  // attempt reconnects (fresh flow id, server rebound by the hook).
  std::int32_t connect_span = -1;
  if (traced && trace_id_ != 0) {
    obs::RequestTracer& tracer = obs_->requests(host_);
    connect_span = tracer.start(obs::ReqKind::connect, trace_id_,
                                tracer.span_id_of(root_span_),
                                socket_->flow(), "rpc_resilient", attempt_,
                                /*key=*/-1, /*bytes=*/0, c.loop().now());
  }
  handling_failure_ = true;
  socket_ = reconnect_(c, socket_->flow());
  handling_failure_ = false;
  require(socket_ != nullptr, "reconnect must produce a socket");
  ++counters_.reconnects;
  bind_socket();
  response_pending_ = 0;
  request_pending_ = 0;
  conn_ordinal_ = 0;  // serve ordinals restart with the fresh flow
  if (connect_span >= 0) {
    obs_->requests(host_).finish(connect_span, c.loop().now());
  }

  const bool budget_spent = attempt_ > policy_.max_retries;
  if (budget_spent) {
    ++counters_.failed;
    attempt_ = 0;  // give up; the next quantum issues a fresh request
    if (traced) {
      obs_->requests(host_).finish(root_span_, c.loop().now(), /*ok=*/false);
      root_span_ = -1;
      trace_id_ = 0;
    }
    // In driver mode the spent submission is consumed: report it.
    if (driver_mode_ && on_complete_) on_complete_(/*ok=*/false);
  } else {
    ++counters_.retries;
  }

  Nanos delay = 0;
  if (policy_.breaker_threshold > 0 &&
      consecutive_failures_ >= policy_.breaker_threshold) {
    // Open (or re-open after a failed half-open probe): shed load for
    // the cooldown, then let a single probe through.
    ++counters_.breaker_opens;
    delay = policy_.breaker_cooldown;
  } else if (!budget_spent) {
    const int exponent = std::min(attempt_ - 1, 20);
    const Nanos backoff = std::min<Nanos>(policy_.backoff_base << exponent,
                                          policy_.backoff_cap);
    delay = backoff +
            static_cast<Nanos>(policy_.jitter * static_cast<double>(backoff) *
                               rng_.next_double());
  }
  if (delay > 0) {
    if (traced && trace_id_ != 0) {
      obs::RequestTracer& tracer = obs_->requests(host_);
      backoff_span_ = tracer.start(obs::ReqKind::backoff, trace_id_,
                                   tracer.span_id_of(root_span_),
                                   socket_->flow(), "rpc_resilient", attempt_,
                                   /*key=*/-1, /*bytes=*/0, c.loop().now());
    }
    waiting_backoff_ = true;
    backoff_timer_.arm_after(delay);
    return false;
  }
  return true;
}

void ResilientRpcClient::trace_attempt(Nanos now) {
  if (obs_ == nullptr || !obs_->tracing()) return;
  obs::RequestTracer& tracer = obs_->requests(host_);
  const int flow = socket_->flow();
  const std::int64_t ordinal = conn_ordinal_++;
  if (attempt_ == 1) {
    // First attempt of a fresh request: the sampling decision and trace
    // id are pure hashes of (flow, ordinal) at first issue.
    root_span_ = -1;
    trace_id_ = 0;
    if (!tracer.sampled(flow, ordinal)) return;
    trace_id_ = tracer.make_trace_id(flow, ordinal);
    root_span_ =
        tracer.start(obs::ReqKind::request, trace_id_, 0, flow,
                     "rpc_resilient", /*attempt=*/0, ordinal, rpc_size_, now);
  }
  if (trace_id_ == 0) return;
  attempt_span_ = tracer.start(obs::ReqKind::attempt, trace_id_,
                               tracer.span_id_of(root_span_), flow,
                               "rpc_resilient", attempt_ - 1, ordinal,
                               rpc_size_, now);
  const std::int32_t xmit = tracer.start(
      obs::ReqKind::xmit, trace_id_, tracer.span_id_of(attempt_span_), flow,
      "rpc_resilient", attempt_ - 1, ordinal, rpc_size_, now);
  if (xmit >= 0) {
    obs::RequestTracer* rt = &tracer;
    socket_->arm_tx_watch(rpc_size_,
                          [rt, xmit](Nanos at) { rt->finish(xmit, at); });
  }
}

}  // namespace hostsim
