// Resilient RPC client: an RpcClient wrapped with per-request deadlines,
// a bounded retry budget with exponential backoff + deterministic
// jitter, connection recovery through a reconnect hook, and a circuit
// breaker that sheds load after consecutive failures.
//
// Failure handling is connection-granular: a byte stream offers no
// request framing to cancel or dedup an outstanding request, so every
// failed attempt tears the connection down and retries over a fresh one
// (fresh flow id — stale in-flight frames answer with RSTs instead of
// corrupting the new connection's sequence space).
#ifndef HOSTSIM_APP_RESILIENT_RPC_H
#define HOSTSIM_APP_RESILIENT_RPC_H

#include <cstdint>
#include <functional>

#include "app/rpc_resilience.h"
#include "cpu/scheduler.h"
#include "net/transport.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace hostsim {

class ResilientRpcClient {
 public:
  struct Counters {
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;        ///< re-issued attempts
    std::uint64_t timeouts = 0;       ///< deadline expiries + ETIMEDOUT
    std::uint64_t resets = 0;         ///< ECONNRESET failures
    std::uint64_t failed = 0;         ///< permanent failures (budget spent)
    std::uint64_t breaker_opens = 0;  ///< cooldowns entered
    std::uint64_t reconnects = 0;     ///< fresh connections established
  };

  /// Replaces the dead connection with a fresh one between the same
  /// endpoints and returns the new local socket.  The workload builder
  /// wraps Cluster::reconnect_flow here and rebinds the peer RpcServer.
  using ReconnectFn = std::function<TransportSocket*(Core&, int old_flow)>;

  /// `rng` should be forked from the loop's root generator at build time
  /// (after cluster construction, so fault/wire streams are untouched);
  /// it only feeds backoff jitter, keeping runs seed-deterministic.
  ResilientRpcClient(Core& core, TransportSocket& socket, Bytes rpc_size,
                     const RpcResilienceConfig& policy, Rng rng,
                     ReconnectFn reconnect);

  /// Issues the first request.
  void start() { thread_.notify(); }

  /// Attaches request tracing / latency monitoring (class
  /// "rpc_resilient"): the root span covers first issue -> completion or
  /// permanent failure; retries, backoffs, reconnects, and transmits are
  /// child spans under it.
  void set_observer(obs::Observer* obs, int host) {
    obs_ = obs;
    host_ = host;
  }

  /// Switches the client from its built-in closed loop (ping-pong: the
  /// next request issues the instant a response completes) to *driver
  /// mode*: requests are queued by an external generator via submit()
  /// and served serially over the single byte stream.  The closed-loop
  /// state machine silently assumed one outstanding request; driver
  /// mode makes multiple outstanding submissions safe by queueing them
  /// — the connection never carries two interleaved requests, so the
  /// echo framing (and the retry/backoff machinery, which replays the
  /// *current* request only) is preserved.  `on_complete(ok)` fires once
  /// per submission: ok=false when the retry budget was spent.
  /// Must be called before the first request is issued.
  void enable_driver_mode(std::function<void(bool ok)> on_complete);

  /// Queues one request (driver mode only — asserts otherwise).  Safe to
  /// call with any number of requests already outstanding.
  void submit();

  /// Submissions accepted but not yet issued (driver mode).
  std::uint64_t queued() const { return pending_submissions_; }

  Thread& thread() { return thread_; }
  const Counters& counters() const { return counters_; }
  std::uint64_t completed() const { return counters_.completed; }

  /// Per-transaction latency (first issue -> response fully read, so a
  /// retried request's latency includes its backoff waits).
  const Histogram& latency() const { return latency_; }
  void reset_latency() { latency_.clear(); }

 private:
  void bind_socket();
  void run_quantum(Core& core, Thread& thread);
  /// Accounts one failed attempt, reconnects, and schedules the next
  /// move; returns true when the thread should continue immediately
  /// (no backoff), false when the backoff timer will wake it.
  bool handle_failure(Core& core);
  void on_deadline();
  /// Opens the root (first attempt only), attempt, and xmit spans for
  /// the attempt being issued at `now`.
  void trace_attempt(Nanos now);

  TransportSocket* socket_;
  Bytes rpc_size_;
  RpcResilienceConfig policy_;
  Rng rng_;
  ReconnectFn reconnect_;
  Thread thread_;
  Timer deadline_timer_;
  Timer backoff_timer_;

  Bytes response_pending_ = 0;  ///< response bytes still expected
  Bytes request_pending_ = 0;   ///< request bytes not yet accepted
  Nanos first_issued_at_ = 0;   ///< first attempt of the current request
  int attempt_ = 0;             ///< attempts so far for the current request
  int consecutive_failures_ = 0;
  bool failure_pending_ = false;   ///< deadline/error awaiting handling
  bool waiting_backoff_ = false;   ///< blocked until the backoff timer
  bool handling_failure_ = false;  ///< suppress self-inflicted errors
  SocketError conn_error_ = SocketError::none;

  bool driver_mode_ = false;
  std::uint64_t pending_submissions_ = 0;
  std::function<void(bool ok)> on_complete_;

  Counters counters_;
  Histogram latency_;

  obs::Observer* obs_ = nullptr;
  int host_ = 0;
  EventLoop* loop_ = nullptr;
  std::uint64_t trace_id_ = 0;      ///< current request's trace (0 = off)
  std::int64_t conn_ordinal_ = 0;   ///< requests issued on this connection
  std::int32_t root_span_ = -1;
  std::int32_t attempt_span_ = -1;
  std::int32_t backoff_span_ = -1;
};

}  // namespace hostsim

#endif  // HOSTSIM_APP_RESILIENT_RPC_H
