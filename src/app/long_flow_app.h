// iPerf-like long-flow applications.
//
// The sender writes fixed-size chunks as fast as the socket accepts them
// and blocks on a full send buffer; the receiver reads fixed-size chunks
// and blocks on an empty receive queue.  Like iPerf, neither does any
// application-level processing (paper §2.2).
#ifndef HOSTSIM_APP_LONG_FLOW_APP_H
#define HOSTSIM_APP_LONG_FLOW_APP_H

#include "cpu/scheduler.h"
#include "net/transport.h"

namespace hostsim {

class LongFlowSender {
 public:
  LongFlowSender(Core& core, TransportSocket& socket, Bytes chunk = 128 * kKiB);

  /// Begins streaming (schedules the first quantum).
  void start() { thread_.notify(); }

  Thread& thread() { return thread_; }

 private:
  TransportSocket* socket_;
  Bytes chunk_;
  Thread thread_;
};

class LongFlowReceiver {
 public:
  LongFlowReceiver(Core& core, TransportSocket& socket, Bytes chunk = 32 * kKiB);

  Thread& thread() { return thread_; }
  Bytes received() const { return socket_->delivered_to_app(); }

 private:
  TransportSocket* socket_;
  Bytes chunk_;
  Thread thread_;
};

}  // namespace hostsim

#endif  // HOSTSIM_APP_LONG_FLOW_APP_H
