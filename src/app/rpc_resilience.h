// Resilient-RPC client policy: per-request deadlines, bounded retries
// with exponential backoff and deterministic jitter, and a circuit
// breaker that sheds load after consecutive timeouts.
//
// Kept dependency-free (units only) so core config can embed it without
// pulling in the application layer.
#ifndef HOSTSIM_APP_RPC_RESILIENCE_H
#define HOSTSIM_APP_RPC_RESILIENCE_H

#include "sim/units.h"

namespace hostsim {

struct RpcResilienceConfig {
  /// Master switch.  Off by default so legacy configurations hash and
  /// serialize bit-identically; the block is only emitted when enabled.
  bool enabled = false;

  /// Per-request deadline: a response not received within this window
  /// counts as a timeout and triggers retry/backoff handling.
  Nanos deadline = 5 * kMillisecond;

  /// Retries after the first attempt before a request is declared
  /// permanently failed; 0 turns every timeout into a failure.
  int max_retries = 3;

  /// Exponential backoff between attempts: base * 2^(attempt-1), capped.
  Nanos backoff_base = 1 * kMillisecond;
  Nanos backoff_cap = 16 * kMillisecond;
  /// Deterministic jitter: a seeded uniform draw in [0, jitter] of the
  /// computed backoff is added, decorrelating retry storms across
  /// clients without breaking run-to-run reproducibility.
  double jitter = 0.5;

  /// Circuit breaker: after this many consecutive failures the client
  /// stops issuing requests for `breaker_cooldown`, then half-opens with
  /// a single probe.  0 disables the breaker.
  int breaker_threshold = 4;
  Nanos breaker_cooldown = 10 * kMillisecond;
};

}  // namespace hostsim

#endif  // HOSTSIM_APP_RPC_RESILIENCE_H
