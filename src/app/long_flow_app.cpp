#include "app/long_flow_app.h"

namespace hostsim {

LongFlowSender::LongFlowSender(Core& core, TransportSocket& socket, Bytes chunk)
    : socket_(&socket), chunk_(chunk), thread_(core, "iperf-tx") {
  socket_->set_tx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    const Bytes sent = socket_->send(c, chunk_);
    // A short write means the send buffer filled: block until the ACK
    // path frees space and notifies us.
    thread.finish_quantum(/*more_work=*/sent == chunk_);
  });
}

LongFlowReceiver::LongFlowReceiver(Core& core, TransportSocket& socket, Bytes chunk)
    : socket_(&socket), chunk_(chunk), thread_(core, "iperf-rx") {
  socket_->set_rx_waiter(&thread_);
  thread_.set_body([this](Core& c, Thread& thread) {
    socket_->recv(c, chunk_);
    thread.finish_quantum(/*more_work=*/socket_->readable() > 0);
  });
}

}  // namespace hostsim
