// netperf-like ping-pong RPC applications over long-lived connections.
//
// A client sends a request of `rpc_size` bytes and waits for an equally
// sized response before sending the next request (netperf TCP_RR with
// equal request/response sizes, paper §3.7).  Server side follows
// netperf's process-per-connection model: every connection is served by
// its own thread, so colocated connections pay a scheduler wake/switch
// per transaction — exactly the short-flow scheduling overhead the paper
// measures (figs. 10 and 11).
#ifndef HOSTSIM_APP_RPC_APP_H
#define HOSTSIM_APP_RPC_APP_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/scheduler.h"
#include "net/transport.h"

namespace hostsim {

class RpcClient {
 public:
  RpcClient(Core& core, TransportSocket& socket, Bytes rpc_size);

  /// Issues the first request.
  void start() { thread_.notify(); }

  Thread& thread() { return thread_; }
  std::uint64_t completed() const { return completed_; }

  /// Per-transaction latency (request issued -> response fully read).
  const Histogram& latency() const { return latency_; }
  void reset_latency() { latency_.clear(); }

 private:
  TransportSocket* socket_;
  Bytes rpc_size_;
  Bytes response_pending_ = 0;  ///< response bytes still expected
  Bytes request_pending_ = 0;   ///< request bytes not yet accepted
  Nanos issued_at_ = 0;         ///< timestamp of the outstanding request
  Thread thread_;
  std::uint64_t completed_ = 0;
  Histogram latency_;
};

/// One server process (thread) bound to one connection, echoing each
/// complete request with an equally sized response.
class RpcServer {
 public:
  RpcServer(Core& core, TransportSocket& socket, Bytes rpc_size);

  Thread& thread() { return thread_; }
  std::uint64_t served() const { return served_; }

  /// Rebinds the server to a fresh connection after a client reconnect:
  /// the old socket is gone, and any partially received request or
  /// partially sent response died with it.
  void rebind(TransportSocket& socket);

 private:
  TransportSocket* socket_;
  Bytes rpc_size_;
  Bytes request_received_ = 0;
  Bytes response_pending_ = 0;  ///< response bytes not yet accepted
  Thread thread_;
  std::uint64_t served_ = 0;
};

}  // namespace hostsim

#endif  // HOSTSIM_APP_RPC_APP_H
