// netperf-like ping-pong RPC applications over long-lived connections.
//
// A client sends a request of `rpc_size` bytes and waits for an equally
// sized response before sending the next request (netperf TCP_RR with
// equal request/response sizes, paper §3.7).  Server side follows
// netperf's process-per-connection model: every connection is served by
// its own thread, so colocated connections pay a scheduler wake/switch
// per transaction — exactly the short-flow scheduling overhead the paper
// measures (figs. 10 and 11).
#ifndef HOSTSIM_APP_RPC_APP_H
#define HOSTSIM_APP_RPC_APP_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/scheduler.h"
#include "net/transport.h"
#include "obs/observer.h"

namespace hostsim {

class RpcClient {
 public:
  RpcClient(Core& core, TransportSocket& socket, Bytes rpc_size);

  /// Issues the first request.
  void start() { thread_.notify(); }

  /// Attaches request tracing / latency monitoring (class "rpc").
  void set_observer(obs::Observer* obs, int host) {
    obs_ = obs;
    host_ = host;
  }

  Thread& thread() { return thread_; }
  std::uint64_t completed() const { return completed_; }

  /// Per-transaction latency (request issued -> response fully read).
  const Histogram& latency() const { return latency_; }
  void reset_latency() { latency_.clear(); }

 private:
  /// Opens the request/attempt/xmit spans for one sampled issue.
  void trace_issue(Nanos now);

  TransportSocket* socket_;
  Bytes rpc_size_;
  Bytes response_pending_ = 0;  ///< response bytes still expected
  Bytes request_pending_ = 0;   ///< request bytes not yet accepted
  Nanos issued_at_ = 0;         ///< timestamp of the outstanding request
  Thread thread_;
  std::uint64_t completed_ = 0;
  Histogram latency_;
  obs::Observer* obs_ = nullptr;
  int host_ = 0;
  std::int64_t issue_ordinal_ = 0;  ///< requests issued on this connection
  std::int32_t req_span_ = -1;
  std::int32_t attempt_span_ = -1;
};

/// One server process (thread) bound to one connection, echoing each
/// complete request with an equally sized response.
class RpcServer {
 public:
  RpcServer(Core& core, TransportSocket& socket, Bytes rpc_size);

  Thread& thread() { return thread_; }
  std::uint64_t served() const { return served_; }

  /// Attaches request tracing: serve ordinals key the harvest-time join
  /// against the client's attempt spans on the same flow.
  void set_observer(obs::Observer* obs, int host) {
    obs_ = obs;
    host_ = host;
  }

  /// Rebinds the server to a fresh connection after a client reconnect:
  /// the old socket is gone, and any partially received request or
  /// partially sent response died with it.  Serve ordinals restart with
  /// the fresh flow id, mirroring the client's per-connection counter.
  void rebind(TransportSocket& socket);

 private:
  /// Closes the open service span at response-fully-sent.
  void finish_service(Nanos now);

  TransportSocket* socket_;
  Bytes rpc_size_;
  Bytes request_received_ = 0;
  Bytes response_pending_ = 0;  ///< response bytes not yet accepted
  Thread thread_;
  std::uint64_t served_ = 0;
  obs::Observer* obs_ = nullptr;
  int host_ = 0;
  std::int64_t serve_ordinal_ = 0;  ///< requests served on this connection
  std::int32_t service_span_ = -1;
};

}  // namespace hostsim

#endif  // HOSTSIM_APP_RPC_APP_H
