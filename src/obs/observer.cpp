#include "obs/observer.h"

#include <algorithm>
#include <string>

#include "sim/contract.h"

namespace hostsim::obs {

namespace {

constexpr std::string_view kStageSeries[kNumStages] = {
    "stage.nic_dma", "stage.irq",    "stage.gro",
    "stage.tcpip",   "stage.wakeup", "stage.copy",
};
constexpr std::string_view kTotalSeries = "stage.total";

}  // namespace

Observer::Observer(EventLoop& loop, const ObsConfig& config,
                   std::uint64_t seed)
    : config_(config), seed_(seed), default_loop_(&loop) {}

void Observer::attach_topology(const std::vector<EventLoop*>& loops,
                               std::vector<int> shard_of_host) {
  require(!attached_, "attach_topology must run once");
  require(span_tracers_.empty() && registry_.size() == 0,
          "attach_topology must precede instrumentation");
  require(!loops.empty(), "need at least one shard loop");
  loops_ = loops;
  shard_of_host_ = std::move(shard_of_host);
  attached_ = true;
  const int hosts = static_cast<int>(shard_of_host_.size());
  for (int host = 0; host < hosts; ++host) ensure_host(host);
}

void Observer::ensure_host(int host) {
  require(host >= 0, "span host must be >= 0");
  if (static_cast<std::size_t>(host) < span_tracers_.size()) return;
  // attach_topology pre-sizes every host; growth is pre-attach only.
  require(!attached_ || static_cast<std::size_t>(host) <
                            shard_of_host_.size(),
          "host outside attached topology");
  const std::size_t per_host_cap = std::min(
      config_.max_spans, static_cast<std::size_t>(kSpanIdxMask) + 1);
  while (span_tracers_.size() <= static_cast<std::size_t>(host)) {
    const int h = static_cast<int>(span_tracers_.size());
    span_tracers_.emplace_back(seed_, config_.span_rate, per_host_cap);
    request_tracers_.emplace_back();
    request_tracers_.back().configure(seed_, h, config_.trace_rate,
                                      per_host_cap);
    monitors_.emplace_back();
    monitors_.back().configure(
        config_.monitor_enabled() ? config_.latency_window : 0);
  }
}

std::int32_t Observer::span_start(int host, int flow, std::int64_t seq,
                                  Bytes len, Nanos now) {
  ensure_host(host);
  const std::int32_t index = span_tracers_[static_cast<std::size_t>(host)]
                                 .maybe_start(host, flow, seq, len, now);
  if (index < 0) return -1;
  return (host << kSpanIdxBits) | index;
}

void Observer::span_complete(std::int32_t id) {
  if (id < 0) return;
  const Span* span = tracer_of(id).complete(index_of(id));
  if (span == nullptr) return;
  LatencyMonitor& monitor = monitors_[static_cast<std::size_t>(span->host)];
  if (!monitor.enabled()) return;
  // Stage durations land in the window of the stage's *end* instant —
  // the moment the latency became observable.
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (span->at[i] == kUnstamped) continue;
    for (std::size_t j = i + 1; j < kNumStages; ++j) {
      if (span->at[j] == kUnstamped) continue;
      monitor.record(kStageSeries[i], span->at[j] - span->at[i],
                     span->at[j]);
      break;
    }
  }
  const Nanos first = span->at[static_cast<std::size_t>(Stage::nic_dma)];
  const Nanos last = span->at[static_cast<std::size_t>(Stage::copy)];
  if (first != kUnstamped && last != kUnstamped) {
    monitor.record(kTotalSeries, last - first, last);
  }
}

RequestTracer& Observer::requests(int host) {
  ensure_host(host);
  return request_tracers_[static_cast<std::size_t>(host)];
}

void Observer::request_latency(int host, std::string_view cls, Nanos value,
                               Nanos now) {
  ensure_host(host);
  LatencyMonitor& monitor = monitors_[static_cast<std::size_t>(host)];
  if (!monitor.enabled()) return;
  monitor.record("class." + std::string(cls), value, now);
}

void Observer::start_sampler() {
  if (!config_.sampler_enabled()) return;
  require(samplers_.empty(), "start_sampler must run once");
  if (!attached_) {
    samplers_.push_back(std::make_unique<TimeSeriesSampler>(
        *default_loop_, registry_, config_.sample_period));
  } else {
    const std::size_t shards = loops_.size();
    std::vector<std::vector<std::size_t>> owned(shards);
    for (std::size_t i = 0; i < registry_.size(); ++i) {
      const int owner = registry_.owner_host(i);
      std::size_t shard = 0;
      if (owner >= 0) {
        require(static_cast<std::size_t>(owner) < shard_of_host_.size(),
                "gauge owner outside topology");
        shard = static_cast<std::size_t>(
            shard_of_host_[static_cast<std::size_t>(owner)]);
      }
      require(shard < shards, "gauge owner maps to missing shard");
      owned[shard].push_back(i);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      samplers_.push_back(std::make_unique<TimeSeriesSampler>(
          *loops_[s], registry_, config_.sample_period));
      samplers_.back()->restrict_to(std::move(owned[s]));
    }
  }
  for (const auto& sampler : samplers_) sampler->start();
}

Observer::Series Observer::merged_series() const {
  Series out;
  if (samplers_.empty()) return out;
  out.times = samplers_[0]->times();
  for (const auto& sampler : samplers_) {
    require(sampler->times().size() == out.times.size(),
            "shard samplers disagree on tick count");
  }
  if (out.times.empty()) return out;

  // Where each registry entry's values live: (sampler, position).
  const std::size_t n = registry_.size();
  std::vector<std::pair<std::int32_t, std::int32_t>> where(n, {-1, -1});
  for (std::size_t s = 0; s < samplers_.size(); ++s) {
    const auto& indices = samplers_[s]->indices();
    for (std::size_t pos = 0; pos < indices.size(); ++pos) {
      where[indices[pos]] = {static_cast<std::int32_t>(s),
                             static_cast<std::int32_t>(pos)};
    }
  }

  // Columns in global registration order, fold groups collapsed into
  // one summed column at the group's first position.
  const std::vector<std::string> names = registry_.names();
  std::vector<std::int32_t> col_of(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& fold = registry_.fold(i);
    if (fold.empty()) {
      col_of[i] = static_cast<std::int32_t>(out.columns.size());
      out.columns.push_back(names[i]);
      continue;
    }
    std::int32_t existing = -1;
    for (std::size_t c = 0; c < out.columns.size(); ++c) {
      if (out.columns[c] == fold) {
        existing = static_cast<std::int32_t>(c);
        break;
      }
    }
    if (existing < 0) {
      existing = static_cast<std::int32_t>(out.columns.size());
      out.columns.push_back(fold);
    }
    col_of[i] = existing;
  }

  out.rows.reserve(out.times.size());
  for (std::size_t t = 0; t < out.times.size(); ++t) {
    std::vector<double> row(out.columns.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [s, pos] = where[i];
      if (s < 0) continue;
      row[static_cast<std::size_t>(col_of[i])] +=
          samplers_[static_cast<std::size_t>(s)]
              ->rows()[t][static_cast<std::size_t>(pos)];
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::vector<Span> Observer::merged_spans() const {
  std::vector<Span> out;
  std::size_t total = 0;
  for (const SpanTracer& tracer : span_tracers_) total += tracer.spans().size();
  out.reserve(total);
  for (const SpanTracer& tracer : span_tracers_) {
    out.insert(out.end(), tracer.spans().begin(), tracer.spans().end());
  }
  return out;
}

std::vector<RequestSpan> Observer::merged_requests() const {
  std::vector<RequestSpan> out;
  std::size_t total = 0;
  for (const RequestTracer& tracer : request_tracers_) {
    total += tracer.spans().size();
  }
  out.reserve(total);
  for (const RequestTracer& tracer : request_tracers_) {
    out.insert(out.end(), tracer.spans().begin(), tracer.spans().end());
  }
  return out;
}

std::vector<StageSummary> Observer::stage_summary() const {
  SpanTracer::StageHistograms merged;
  for (const SpanTracer& tracer : span_tracers_) {
    tracer.merge_summary_into(merged);
  }
  return SpanTracer::summarize_merged(merged);
}

LatencyMonitor Observer::merged_latency() const {
  LatencyMonitor merged;
  merged.configure(config_.monitor_enabled() ? config_.latency_window : 0);
  for (const LatencyMonitor& monitor : monitors_) merged.merge(monitor);
  return merged;
}

std::uint64_t Observer::spans_started() const {
  std::uint64_t total = 0;
  for (const SpanTracer& tracer : span_tracers_) total += tracer.started();
  return total;
}

std::uint64_t Observer::spans_completed() const {
  std::uint64_t total = 0;
  for (const SpanTracer& tracer : span_tracers_) total += tracer.completed();
  return total;
}

}  // namespace hostsim::obs
