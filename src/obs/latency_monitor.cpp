#include "obs/latency_monitor.h"

#include <algorithm>

namespace hostsim::obs {

void LatencyMonitor::record(std::string_view series, Nanos value, Nanos now) {
  if (window_ <= 0) return;
  const std::int64_t window = now / window_;
  auto series_it = cells_.find(std::string(series));
  if (series_it == cells_.end()) {
    series_it = cells_.emplace(std::string(series),
                               std::map<std::int64_t, Histogram>{}).first;
  }
  series_it->second[window].record(value);
}

void LatencyMonitor::merge(const LatencyMonitor& other) {
  if (window_ <= 0) window_ = other.window_;
  for (const auto& [series, windows] : other.cells_) {
    std::map<std::int64_t, Histogram>& mine = cells_[series];
    for (const auto& [window, hist] : windows) {
      mine[window].merge(hist);
    }
  }
}

std::vector<LatencyMonitor::WindowStats> LatencyMonitor::readout() const {
  std::vector<WindowStats> out;
  for (const auto& [series, windows] : cells_) {
    for (const auto& [window, hist] : windows) {
      WindowStats stats;
      stats.series = series;
      stats.window_start = window * window_;
      stats.count = hist.count();
      stats.p50 = hist.percentile(0.50);
      stats.p99 = hist.percentile(0.99);
      out.push_back(std::move(stats));
    }
  }
  return out;  // maps iterate sorted: (series, window) order already
}

std::vector<LatencyMonitor::SloEpisode> LatencyMonitor::episodes(
    Nanos slo_p99) const {
  std::vector<SloEpisode> out;
  if (slo_p99 <= 0) return out;
  for (const auto& [series, windows] : cells_) {
    bool open = false;
    for (const auto& [window, hist] : windows) {
      const Nanos p99 = hist.percentile(0.99);
      if (p99 > slo_p99) {
        if (!open) {
          SloEpisode episode;
          episode.series = series;
          episode.onset = window * window_;
          episode.worst_p99 = p99;
          out.push_back(std::move(episode));
          open = true;
        } else {
          out.back().worst_p99 = std::max(out.back().worst_p99, p99);
        }
      } else if (open) {
        out.back().recover = window * window_;
        open = false;
      }
    }
  }
  return out;
}

}  // namespace hostsim::obs
