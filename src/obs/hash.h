// Deterministic sampling/identity hashes shared by the obs layer.
//
// Everything observability samples or names (pipeline spans, request
// traces, span ids) must be a pure function of (seed, simulated
// identifiers) — never of the run's RNG streams or of wall-clock
// iteration order — so attaching an observer cannot perturb a run and
// sharded runs reproduce serial artifacts byte-for-byte.
#ifndef HOSTSIM_OBS_HASH_H
#define HOSTSIM_OBS_HASH_H

#include <cmath>
#include <cstdint>

namespace hostsim::obs {

/// splitmix64 finalizer: the standard cheap 64-bit mixer.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps a sampling rate in [0,1] to a 64-bit threshold: sample iff
/// hash < threshold.  0 disables, >= 1 samples everything.
inline std::uint64_t rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~std::uint64_t{0};
  const double scaled = std::ldexp(rate, 64);  // rate * 2^64
  if (scaled >= std::ldexp(1.0, 64)) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(scaled);
}

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_HASH_H
