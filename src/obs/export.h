// Artifact exporters: RFC-4180 CSV, Chrome trace-event ("Perfetto")
// JSON, and the request-span JSONL log.
//
// The trace-event output loads directly in ui.perfetto.dev (or
// chrome://tracing): pipeline spans become "X" duration slices grouped
// by pid=host / tid=flow, request spans become causally-linked slices
// with "s"/"f" flow arrows across hosts, sampler rows become "C"
// counter tracks, and legacy Tracer records become "i" instant events.
// Timestamps are microseconds (the trace-event unit), printed with
// fixed precision so equal runs produce byte-identical files.
//
// Every exporter consumes the Observer's *merged* harvest views, which
// are already canonical (host order, fold-collapsed columns, joined and
// sorted request spans) — so the bytes written are identical at every
// shard count.
#ifndef HOSTSIM_OBS_EXPORT_H
#define HOSTSIM_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_trace.h"
#include "obs/latency_monitor.h"
#include "obs/obs_config.h"
#include "obs/observer.h"
#include "obs/request_trace.h"
#include "obs/span.h"

namespace hostsim::obs {

/// Minimal RFC-4180 CSV emitter: quotes (doubling embedded quotes) any
/// field containing a comma, quote, or newline.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter& field(std::string_view value);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(double value);  ///< %.17g (canonical round-trip form)
  void end_row();

  static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
  bool row_started_ = false;
};

/// Time-series CSV: header "time_ns,<col>,..." then one row per tick.
void write_timeseries_csv(std::ostream& out, const Observer::Series& series);

/// Chrome trace-event JSON.  `events` is the merged legacy trace (may
/// be empty); `requests` must already be joined (join_request_spans).
void write_perfetto_json(std::ostream& out, const std::vector<Span>& spans,
                         const Observer::Series& series,
                         const std::vector<RequestSpan>& requests,
                         const std::vector<TraceRecord>& events);

/// Request-span log: one JSON object per line, canonical order.
void write_spans_jsonl(std::ostream& out,
                       const std::vector<RequestSpan>& requests);

/// Continuous-latency windows: window_start_ns,series,count,p50_ns,p99_ns.
void write_latency_csv(std::ostream& out,
                       const std::vector<LatencyMonitor::WindowStats>& rows);

/// Writes a run's artifacts under <out_dir>/<out_stem>:
///   .trace.json       always
///   .timeseries.csv   always
///   .spans.jsonl      when request tracing is enabled
///   .latency.csv      when the latency monitor is enabled
/// creating out_dir if needed.  `requests` must already be joined.
void write_obs_artifacts(const Observer& observer,
                         const std::vector<TraceRecord>& events,
                         const std::vector<RequestSpan>& requests,
                         const ObsConfig& config);

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_EXPORT_H
