// Artifact exporters: RFC-4180 CSV and Chrome trace-event ("Perfetto")
// JSON.
//
// The trace-event output loads directly in ui.perfetto.dev (or
// chrome://tracing): pipeline spans become "X" duration slices grouped
// by pid=host / tid=flow, sampler rows become "C" counter tracks, and
// legacy Tracer records become "i" instant events.  Timestamps are
// microseconds (the trace-event unit), printed with fixed precision so
// equal runs produce byte-identical files.
#ifndef HOSTSIM_OBS_EXPORT_H
#define HOSTSIM_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_trace.h"
#include "obs/obs_config.h"
#include "obs/sampler.h"
#include "obs/span.h"

namespace hostsim::obs {

/// Minimal RFC-4180 CSV emitter: quotes (doubling embedded quotes) any
/// field containing a comma, quote, or newline.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter& field(std::string_view value);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(double value);  ///< %.17g (canonical round-trip form)
  void end_row();

  static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
  bool row_started_ = false;
};

/// Time-series CSV: header "time_ns,<col>,..." then one row per tick.
void write_timeseries_csv(std::ostream& out, const TimeSeriesSampler& sampler);

/// Chrome trace-event JSON.  `events` is the merged legacy trace (may be
/// empty); pass the run's spans and sampler for slices + counter tracks.
void write_perfetto_json(std::ostream& out, const SpanTracer& spans,
                         const TimeSeriesSampler& sampler,
                         const std::vector<TraceRecord>& events);

class Observer;

/// Writes a run's artifacts — <out_dir>/<out_stem>.trace.json and
/// <out_dir>/<out_stem>.timeseries.csv — creating out_dir if needed.
void write_obs_artifacts(const Observer& observer,
                         const std::vector<TraceRecord>& events,
                         const ObsConfig& config);

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_EXPORT_H
