#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "sim/contract.h"

namespace hostsim::obs {

// ---------------------------------------------------------------------------
// CsvWriter

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  if (row_started_) *out_ << ',';
  *out_ << escape(value);
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  if (row_started_) *out_ << ',';
  *out_ << value;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  if (row_started_) *out_ << ',';
  *out_ << value;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return field(std::string_view(buffer));
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_started_ = false;
}

// ---------------------------------------------------------------------------
// Time-series CSV

void write_timeseries_csv(std::ostream& out, const Observer::Series& series) {
  CsvWriter csv(out);
  csv.field(std::string_view("time_ns"));
  for (const std::string& column : series.columns) csv.field(column);
  csv.end_row();
  for (std::size_t i = 0; i < series.rows.size(); ++i) {
    csv.field(series.times[i]);
    for (double value : series.rows[i]) csv.field(value);
    csv.end_row();
  }
}

// ---------------------------------------------------------------------------
// Latency-window CSV

void write_latency_csv(std::ostream& out,
                       const std::vector<LatencyMonitor::WindowStats>& rows) {
  CsvWriter csv(out);
  csv.field(std::string_view("window_start_ns"));
  csv.field(std::string_view("series"));
  csv.field(std::string_view("count"));
  csv.field(std::string_view("p50_ns"));
  csv.field(std::string_view("p99_ns"));
  csv.end_row();
  for (const LatencyMonitor::WindowStats& row : rows) {
    csv.field(row.window_start);
    csv.field(row.series);
    csv.field(row.count);
    csv.field(row.p50);
    csv.field(row.p99);
    csv.end_row();
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON

namespace {

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Nanoseconds as trace-event microseconds, fixed 3 decimals
/// (deterministic — no float formatting involved).
void json_micros(std::ostream& out, Nanos ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out << buffer;
}

std::string hex_id(std::uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016" PRIx64, id);
  return std::string(buffer);
}

class EventArray {
 public:
  explicit EventArray(std::ostream& out) : out_(&out) {}

  /// Starts one trace event object; caller writes the fields after
  /// "name" and closes with close_event().
  std::ostream& begin_event(std::string_view name) {
    if (!first_) *out_ << ",\n ";
    first_ = false;
    *out_ << "{\"name\":";
    json_string(*out_, name);
    return *out_;
  }

  void close_event() { *out_ << '}'; }

 private:
  std::ostream* out_;
  bool first_ = true;
};

/// One "s" (flow start) / "f" (flow finish, binding enclosing slice)
/// arrow endpoint.
void flow_event(EventArray& array, char phase, std::string_view id, int pid,
                int tid, Nanos ts) {
  std::ostream& o = array.begin_event("rpc");
  o << ",\"ph\":\"" << phase << "\",\"cat\":\"rpc\",\"id\":";
  json_string(o, id);
  if (phase == 'f') o << ",\"bp\":\"e\"";
  o << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
  json_micros(o, ts);
  array.close_event();
}

}  // namespace

void write_perfetto_json(std::ostream& out, const std::vector<Span>& spans,
                         const Observer::Series& series,
                         const std::vector<RequestSpan>& requests,
                         const std::vector<TraceRecord>& events) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n ";
  EventArray array(out);

  // Process-name metadata: one per host seen in spans, requests, or
  // events (pid < 0 renders the switch fabric).
  std::set<int> hosts;
  for (const Span& span : spans) hosts.insert(span.host);
  for (const RequestSpan& span : requests) hosts.insert(span.host);
  for (const TraceRecord& record : events) hosts.insert(record.host);
  for (int host : hosts) {
    std::ostream& o = array.begin_event("process_name");
    o << ",\"ph\":\"M\",\"pid\":" << host << ",\"args\":{\"name\":";
    if (host < 0) {
      json_string(o, "switch");
    } else {
      json_string(o, "host" + std::to_string(host));
    }
    o << "}";
    array.close_event();
  }

  // Pipeline spans as duration slices: stage i runs from its stamp to
  // the next present stamp (the copy stage renders as a zero-width
  // slice marking completion).
  for (const Span& span : spans) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      if (span.at[i] == kUnstamped) continue;
      Nanos end = span.at[i];
      for (std::size_t j = i + 1; j < kNumStages; ++j) {
        if (span.at[j] == kUnstamped) continue;
        end = span.at[j];
        break;
      }
      std::ostream& o =
          array.begin_event(to_string(static_cast<Stage>(i)));
      o << ",\"ph\":\"X\",\"ts\":";
      json_micros(o, span.at[i]);
      o << ",\"dur\":";
      json_micros(o, end - span.at[i]);
      o << ",\"pid\":" << span.host << ",\"tid\":" << span.flow;
      if (i == 0) {
        o << ",\"args\":{\"seq\":" << span.seq << ",\"len\":" << span.len
          << "}";
      }
      array.close_event();
    }
  }

  // Request spans as duration slices, linked by span/parent ids, with
  // cross-host flow arrows attempt -> service (request direction) and
  // service -> attempt (response direction).
  std::map<std::uint64_t, const RequestSpan*> by_span_id;
  for (const RequestSpan& span : requests) {
    by_span_id.emplace(span.span_id, &span);
  }
  for (const RequestSpan& span : requests) {
    if (!span.closed()) continue;
    std::string name = span.kind == ReqKind::request
                           ? "req:" + span.cls
                           : std::string(to_string(span.kind));
    std::ostream& o = array.begin_event(name);
    o << ",\"ph\":\"X\",\"ts\":";
    json_micros(o, span.start);
    o << ",\"dur\":";
    json_micros(o, span.end - span.start);
    o << ",\"pid\":" << span.host << ",\"tid\":" << span.flow
      << ",\"args\":{\"trace\":";
    json_string(o, hex_id(span.trace_id));
    o << ",\"span\":";
    json_string(o, hex_id(span.span_id));
    o << ",\"parent\":";
    json_string(o, hex_id(span.parent_id));
    o << ",\"attempt\":" << span.attempt << ",\"bytes\":" << span.bytes
      << ",\"ok\":" << (span.ok ? "true" : "false") << "}";
    array.close_event();
  }
  for (const RequestSpan& span : requests) {
    if (span.kind != ReqKind::service || !span.closed()) continue;
    const auto it = by_span_id.find(span.parent_id);
    if (it == by_span_id.end()) continue;
    const RequestSpan& attempt = *it->second;
    if (!attempt.closed()) continue;
    flow_event(array, 's', hex_id(span.span_id) + "-req", attempt.host,
               attempt.flow, attempt.start);
    flow_event(array, 'f', hex_id(span.span_id) + "-req", span.host,
               span.flow, span.start);
    flow_event(array, 's', hex_id(span.span_id) + "-rsp", span.host,
               span.flow, span.end);
    flow_event(array, 'f', hex_id(span.span_id) + "-rsp", attempt.host,
               attempt.flow, attempt.end);
  }

  // Sampler rows as counter tracks.
  for (std::size_t i = 0; i < series.rows.size(); ++i) {
    for (std::size_t c = 0; c < series.columns.size(); ++c) {
      std::ostream& o = array.begin_event(series.columns[c]);
      o << ",\"ph\":\"C\",\"ts\":";
      json_micros(o, series.times[i]);
      o << ",\"pid\":0,\"args\":{\"value\":";
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", series.rows[i][c]);
      o << buffer << "}";
      array.close_event();
    }
  }

  // Legacy flight-recorder records as instant events.
  for (const TraceRecord& record : events) {
    std::ostream& o = array.begin_event(to_string(record.kind));
    o << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    json_micros(o, record.at);
    o << ",\"pid\":" << record.host << ",\"tid\":" << record.flow
      << ",\"args\":{\"a\":" << record.a << ",\"b\":" << record.b << "}";
    array.close_event();
  }

  out << "\n]}\n";
}

// ---------------------------------------------------------------------------
// Request-span JSONL

void write_spans_jsonl(std::ostream& out,
                       const std::vector<RequestSpan>& requests) {
  for (const RequestSpan& span : requests) {
    out << "{\"trace\":";
    json_string(out, hex_id(span.trace_id));
    out << ",\"span\":";
    json_string(out, hex_id(span.span_id));
    out << ",\"parent\":";
    json_string(out, hex_id(span.parent_id));
    out << ",\"kind\":";
    json_string(out, to_string(span.kind));
    out << ",\"cls\":";
    json_string(out, span.cls);
    out << ",\"host\":" << span.host << ",\"flow\":" << span.flow
        << ",\"attempt\":" << span.attempt << ",\"start_ns\":" << span.start
        << ",\"end_ns\":" << span.end << ",\"bytes\":" << span.bytes
        << ",\"ok\":" << (span.ok ? "true" : "false") << "}\n";
  }
}

// ---------------------------------------------------------------------------
// Artifact bundle

void write_obs_artifacts(const Observer& observer,
                         const std::vector<TraceRecord>& events,
                         const std::vector<RequestSpan>& requests,
                         const ObsConfig& config) {
  namespace fs = std::filesystem;
  require(!config.out_dir.empty(), "obs out_dir not set");
  fs::create_directories(config.out_dir);
  const fs::path base = fs::path(config.out_dir) / config.out_stem;
  const Observer::Series series = observer.merged_series();
  {
    std::ofstream trace(base.string() + ".trace.json",
                        std::ios::binary | std::ios::trunc);
    require(trace.good(), "cannot open obs trace output");
    write_perfetto_json(trace, observer.merged_spans(), series, requests,
                        events);
  }
  {
    std::ofstream out(base.string() + ".timeseries.csv",
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open obs time-series output");
    write_timeseries_csv(out, series);
  }
  if (config.tracing_enabled()) {
    std::ofstream out(base.string() + ".spans.jsonl",
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open obs span log output");
    write_spans_jsonl(out, requests);
  }
  if (config.monitor_enabled()) {
    std::ofstream out(base.string() + ".latency.csv",
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open obs latency output");
    write_latency_csv(out, observer.merged_latency().readout());
  }
}

}  // namespace hostsim::obs
