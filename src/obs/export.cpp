#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "obs/observer.h"
#include "sim/contract.h"

namespace hostsim::obs {

// ---------------------------------------------------------------------------
// CsvWriter

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  if (row_started_) *out_ << ',';
  *out_ << escape(value);
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  if (row_started_) *out_ << ',';
  *out_ << value;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  if (row_started_) *out_ << ',';
  *out_ << value;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return field(std::string_view(buffer));
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_started_ = false;
}

// ---------------------------------------------------------------------------
// Time-series CSV

void write_timeseries_csv(std::ostream& out,
                          const TimeSeriesSampler& sampler) {
  CsvWriter csv(out);
  csv.field(std::string_view("time_ns"));
  for (const std::string& column : sampler.columns()) csv.field(column);
  csv.end_row();
  const auto& times = sampler.times();
  const auto& rows = sampler.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    csv.field(times[i]);
    for (double value : rows[i]) csv.field(value);
    csv.end_row();
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON

namespace {

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Nanoseconds as trace-event microseconds, fixed 3 decimals
/// (deterministic — no float formatting involved).
void json_micros(std::ostream& out, Nanos ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out << buffer;
}

class EventArray {
 public:
  explicit EventArray(std::ostream& out) : out_(&out) {}

  /// Starts one trace event object; caller writes the fields after
  /// "name" and closes with close_event().
  std::ostream& begin_event(std::string_view name) {
    if (!first_) *out_ << ",\n ";
    first_ = false;
    *out_ << "{\"name\":";
    json_string(*out_, name);
    return *out_;
  }

  void close_event() { *out_ << '}'; }

 private:
  std::ostream* out_;
  bool first_ = true;
};

}  // namespace

void write_perfetto_json(std::ostream& out, const SpanTracer& spans,
                         const TimeSeriesSampler& sampler,
                         const std::vector<TraceRecord>& events) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n ";
  EventArray array(out);

  // Process-name metadata: one per host seen in spans or events.
  std::set<int> hosts;
  for (const Span& span : spans.spans()) hosts.insert(span.host);
  for (const TraceRecord& record : events) hosts.insert(record.host);
  for (int host : hosts) {
    std::ostream& o = array.begin_event("process_name");
    o << ",\"ph\":\"M\",\"pid\":" << host << ",\"args\":{\"name\":";
    if (host < 0) {
      json_string(o, "switch");
    } else {
      json_string(o, "host" + std::to_string(host));
    }
    o << "}";
    array.close_event();
  }

  // Pipeline spans as duration slices: stage i runs from its stamp to
  // the next present stamp (the copy stage renders as a zero-width
  // slice marking completion).
  for (const Span& span : spans.spans()) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      if (span.at[i] == kUnstamped) continue;
      Nanos end = span.at[i];
      for (std::size_t j = i + 1; j < kNumStages; ++j) {
        if (span.at[j] == kUnstamped) continue;
        end = span.at[j];
        break;
      }
      std::ostream& o =
          array.begin_event(to_string(static_cast<Stage>(i)));
      o << ",\"ph\":\"X\",\"ts\":";
      json_micros(o, span.at[i]);
      o << ",\"dur\":";
      json_micros(o, end - span.at[i]);
      o << ",\"pid\":" << span.host << ",\"tid\":" << span.flow;
      if (i == 0) {
        o << ",\"args\":{\"seq\":" << span.seq << ",\"len\":" << span.len
          << "}";
      }
      array.close_event();
    }
  }

  // Sampler rows as counter tracks.
  const auto& columns = sampler.columns();
  const auto& times = sampler.times();
  const auto& rows = sampler.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      std::ostream& o = array.begin_event(columns[c]);
      o << ",\"ph\":\"C\",\"ts\":";
      json_micros(o, times[i]);
      o << ",\"pid\":0,\"args\":{\"value\":";
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", rows[i][c]);
      o << buffer << "}";
      array.close_event();
    }
  }

  // Legacy flight-recorder records as instant events.
  for (const TraceRecord& record : events) {
    std::ostream& o = array.begin_event(to_string(record.kind));
    o << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    json_micros(o, record.at);
    o << ",\"pid\":" << record.host << ",\"tid\":" << record.flow
      << ",\"args\":{\"a\":" << record.a << ",\"b\":" << record.b << "}";
    array.close_event();
  }

  out << "\n]}\n";
}

void write_obs_artifacts(const Observer& observer,
                         const std::vector<TraceRecord>& events,
                         const ObsConfig& config) {
  namespace fs = std::filesystem;
  require(!config.out_dir.empty(), "obs out_dir not set");
  fs::create_directories(config.out_dir);
  const fs::path base = fs::path(config.out_dir) / config.out_stem;
  {
    std::ofstream trace(base.string() + ".trace.json",
                        std::ios::binary | std::ios::trunc);
    require(trace.good(), "cannot open obs trace output");
    write_perfetto_json(trace, observer.spans(), observer.sampler(), events);
  }
  {
    std::ofstream series(base.string() + ".timeseries.csv",
                         std::ios::binary | std::ios::trunc);
    require(series.good(), "cannot open obs time-series output");
    write_timeseries_csv(series, observer.sampler());
  }
}

}  // namespace hostsim::obs
