// Lightweight event tracing (flight recorder) — the obs:: "event" channel.
//
// When enabled, datapath components record fixed-size events into a ring
// buffer — cheap enough to leave on for debugging runs, bounded so long
// simulations cannot exhaust memory.  The harness exposes the merged
// trace through Metrics and the CLI (`--trace=N`), dump_csv() produces
// plotting-friendly output, and the Perfetto exporter renders records as
// instant events alongside pipeline spans (obs/export.h).
//
// Kept in namespace hostsim (not hostsim::obs): the Tracer predates the
// obs layer and every datapath component records through it.
#ifndef HOSTSIM_OBS_EVENT_TRACE_H
#define HOSTSIM_OBS_EVENT_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/units.h"

namespace hostsim {

enum class TraceKind : std::uint8_t {
  skb_deliver,  ///< post-GRO skb reached TCP (a=seq, b=len)
  data_copy,    ///< payload copied to user space (a=bytes)
  ack_tx,       ///< ACK sent (a=rcv_nxt, b=advertised window)
  ack_rx,       ///< ACK processed (a=ack_seq, b=newly acked)
  retransmit,   ///< segment(s) retransmitted (a=seq, b=len)
  rto,           ///< retransmission timeout fired (a=snd_una)
  grant,         ///< receiver-driven credit granted (a=bytes)
  window_probe,  ///< zero-window probe sent (a=snd_nxt, b=len)
  fabric_enqueue,  ///< switch queued a frame (a=egress port, b=queue bytes)
  fabric_drop,     ///< switch drop-tail loss (a=egress port, b=queue bytes)
  ecn_mark,        ///< switch CE-marked a frame (a=egress port, b=queue bytes)
};

/// Number of TraceKind values; keep in sync with the enum (the
/// static_assert below and to_string()'s covered switch both break the
/// build if a kind is added without updating the other).
inline constexpr std::size_t kNumTraceKinds = 11;

static_assert(static_cast<std::size_t>(TraceKind::ecn_mark) + 1 ==
                  kNumTraceKinds,
              "update kNumTraceKinds (and to_string / from_string) when "
              "adding a TraceKind");

std::string_view to_string(TraceKind kind);

/// Inverse of to_string(); returns false if `name` matches no kind.
bool trace_kind_from_string(std::string_view name, TraceKind& out);

struct TraceRecord {
  Nanos at = 0;
  TraceKind kind = TraceKind::skb_deliver;
  int host = 0;  ///< host index (back-to-back: 0 = sender, 1 = receiver);
                 ///< -1 = the switch fabric (kFabricTraceHost)
  int flow = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class Tracer {
 public:
  /// capacity == 0 disables tracing entirely (record() is a no-op).
  explicit Tracer(std::size_t capacity = 0, int host = 0)
      : capacity_(capacity), host_(host) {
    if (capacity_ > 0) ring_.reserve(capacity_);
  }

  bool enabled() const { return capacity_ > 0; }

  void record(Nanos at, TraceKind kind, int flow, std::int64_t a = 0,
              std::int64_t b = 0);

  /// Events in time order (oldest first).  The ring keeps the newest
  /// `capacity` events; `overwritten()` counts what was lost.
  std::vector<TraceRecord> snapshot() const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  void dump_csv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  int host_;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;  ///< ring write cursor once full
  std::uint64_t recorded_ = 0;
};

}  // namespace hostsim

#endif  // HOSTSIM_OBS_EVENT_TRACE_H
