// Observability knobs.
//
// ObsConfig lives below core/ so every layer can reference it, and it is
// deliberately NOT part of the serialized ExperimentConfig: observability
// is a read-only lens on a run, so enabling it must never perturb config
// hashes, sweep cache keys, or simulation outcomes (see obs/observer.h).
#ifndef HOSTSIM_OBS_OBS_CONFIG_H
#define HOSTSIM_OBS_OBS_CONFIG_H

#include <cstddef>
#include <string>

#include "sim/units.h"

namespace hostsim {

struct ObsConfig {
  /// Fraction of payload frames that start a pipeline span ([0,1]).
  /// Sampling is a pure hash of (seed, host, flow, seq) — deterministic
  /// and independent of the run's RNG streams.
  double span_rate = 0.0;

  /// Time-series sampling period; 0 disables the sampler.
  Nanos sample_period = 0;

  /// Fraction of requests that mint a distributed trace ([0,1]).  Like
  /// span sampling, the decision is a pure hash of (seed, flow,
  /// ordinal): deterministic, RNG-free, shard-count independent.
  double trace_rate = 0.0;

  /// Window length for the continuous latency monitor; 0 disables it.
  /// The monitor is otherwise always on while an Observer is attached.
  Nanos latency_window = 500 * kMicrosecond;

  /// Windowed-p99 SLO threshold for the breach flagger; 0 disables
  /// flagging (the monitor still records).
  Nanos slo_p99 = 0;

  /// Directory for exported artifacts ("" = keep in memory only).
  std::string out_dir;

  /// Filename stem for exports (<stem>.trace.json, <stem>.timeseries.csv).
  /// The sweep runner overrides this with the point's config hash.
  std::string out_stem = "obs";

  /// Hard cap on retained spans (memory bound for long runs).
  std::size_t max_spans = std::size_t{1} << 20;

  /// Attach an Observer even when nothing samples — used by bench_engine
  /// to measure the cost of the armed-but-idle hooks.
  bool force_attach = false;

  bool spans_enabled() const { return span_rate > 0.0; }
  bool sampler_enabled() const { return sample_period > 0; }
  bool tracing_enabled() const { return trace_rate > 0.0; }
  bool monitor_enabled() const { return enabled() && latency_window > 0; }
  bool enabled() const {
    return spans_enabled() || sampler_enabled() || tracing_enabled() ||
           force_attach;
  }
};

}  // namespace hostsim

#endif  // HOSTSIM_OBS_OBS_CONFIG_H
