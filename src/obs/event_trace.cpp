#include "obs/event_trace.h"

#include <ostream>

#include "obs/export.h"

namespace hostsim {

std::string_view to_string(TraceKind kind) {
  // Covered switch (no default): -Wswitch flags a newly added kind, and
  // the kNumTraceKinds static_assert in the header catches count drift.
  switch (kind) {
    case TraceKind::skb_deliver: return "skb_deliver";
    case TraceKind::data_copy: return "data_copy";
    case TraceKind::ack_tx: return "ack_tx";
    case TraceKind::ack_rx: return "ack_rx";
    case TraceKind::retransmit: return "retransmit";
    case TraceKind::rto: return "rto";
    case TraceKind::grant: return "grant";
    case TraceKind::window_probe: return "window_probe";
    case TraceKind::fabric_enqueue: return "fabric_enqueue";
    case TraceKind::fabric_drop: return "fabric_drop";
    case TraceKind::ecn_mark: return "ecn_mark";
  }
  return "?";
}

bool trace_kind_from_string(std::string_view name, TraceKind& out) {
  for (std::size_t i = 0; i < kNumTraceKinds; ++i) {
    const TraceKind kind = static_cast<TraceKind>(i);
    if (to_string(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

void Tracer::record(Nanos at, TraceKind kind, int flow, std::int64_t a,
                    std::int64_t b) {
  if (capacity_ == 0) return;
  const TraceRecord record{at, kind, host_, flow, a, b};
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, `next_` points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::dump_csv(std::ostream& out) const {
  obs::CsvWriter csv(out);
  csv.field(std::string_view("time_ns"));
  csv.field(std::string_view("kind"));
  csv.field(std::string_view("host"));
  csv.field(std::string_view("flow"));
  csv.field(std::string_view("a"));
  csv.field(std::string_view("b"));
  csv.end_row();
  for (const TraceRecord& record : snapshot()) {
    csv.field(record.at);
    csv.field(to_string(record.kind));
    csv.field(static_cast<std::int64_t>(record.host));
    csv.field(static_cast<std::int64_t>(record.flow));
    csv.field(record.a);
    csv.field(record.b);
    csv.end_row();
  }
}

}  // namespace hostsim
