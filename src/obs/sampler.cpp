#include "obs/sampler.h"

#include "sim/contract.h"

namespace hostsim::obs {

void TimeSeriesSampler::start() {
  if (period_ <= 0) return;
  loop_->schedule_after(period_, [this] { tick(); });
}

void TimeSeriesSampler::tick() {
  if (columns_.empty()) {
    columns_ = registry_->names();
  }
  require(columns_.size() == registry_->size(),
          "instruments must be registered before the sampler starts");
  std::vector<double> row;
  row.reserve(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    row.push_back(registry_->read(i));
  }
  times_.push_back(loop_->now());
  rows_.push_back(std::move(row));
  loop_->schedule_after(period_, [this] { tick(); });
}

}  // namespace hostsim::obs
