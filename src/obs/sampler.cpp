#include "obs/sampler.h"

#include "sim/contract.h"

namespace hostsim::obs {

namespace {

/// Delivery-band subkey for sampler ticks.  Real deliveries carry
/// (link << 40 | seq) subkeys far below this, and their `sent` time is
/// strictly before arrival (positive propagation), so a tick keyed
/// (at, sent = at, kSamplerSub) ranks after every datapath event at the
/// same instant — one canonical position at every shard count.
constexpr std::uint64_t kSamplerSub = std::uint64_t{1} << 62;

}  // namespace

void TimeSeriesSampler::restrict_to(std::vector<std::size_t> indices) {
  require(columns_.empty(), "restrict_to must precede the first tick");
  indices_ = std::move(indices);
  restricted_ = true;
}

void TimeSeriesSampler::start() {
  if (period_ <= 0) return;
  const Nanos at = loop_->now() + period_;
  loop_->schedule_delivery(at, at, kSamplerSub, [this] { tick(); });
}

void TimeSeriesSampler::tick() {
  if (columns_.empty()) {
    if (!restricted_) {
      indices_.resize(registry_->size());
      for (std::size_t i = 0; i < indices_.size(); ++i) indices_[i] = i;
    }
    frozen_size_ = registry_->size();
    columns_.reserve(indices_.size());
    const std::vector<std::string> names = registry_->names();
    for (std::size_t index : indices_) {
      require(index < names.size(), "sampler index out of range");
      columns_.push_back(names[index]);
    }
  }
  require(frozen_size_ == registry_->size(),
          "instruments must be registered before the sampler starts");
  std::vector<double> row;
  row.reserve(indices_.size());
  for (std::size_t index : indices_) {
    row.push_back(registry_->read(index));
  }
  times_.push_back(loop_->now());
  rows_.push_back(std::move(row));
  const Nanos at = loop_->now() + period_;
  loop_->schedule_delivery(at, at, kSamplerSub, [this] { tick(); });
}

}  // namespace hostsim::obs
