#include "obs/request_trace.h"

#include <algorithm>
#include <map>

#include "obs/hash.h"
#include "sim/contract.h"
#include "sim/stats.h"

namespace hostsim::obs {

namespace {

// Domain-separation tags so trace ids, span ids, and sampling decisions
// never collide even for equal inputs.
constexpr std::uint64_t kTraceTag = 0x7472616365ULL;   // "trace"
constexpr std::uint64_t kSpanTag = 0x7370616eULL;      // "span"
constexpr std::uint64_t kSampleTag = 0x73616d70ULL;    // "samp"

std::uint64_t flow_key(int flow, std::int64_t ordinal) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow)) << 32) ^
         static_cast<std::uint64_t>(ordinal);
}

}  // namespace

std::string_view to_string(ReqKind kind) {
  switch (kind) {
    case ReqKind::request: return "request";
    case ReqKind::attempt: return "attempt";
    case ReqKind::backoff: return "backoff";
    case ReqKind::connect: return "connect";
    case ReqKind::xmit: return "xmit";
    case ReqKind::service: return "service";
    case ReqKind::hop: return "hop";
  }
  return "?";
}

void RequestTracer::configure(std::uint64_t seed, int host, double trace_rate,
                              std::size_t max_spans) {
  seed_ = seed;
  host_ = host;
  threshold_ = rate_to_threshold(trace_rate);
  max_spans_ = max_spans;
}

bool RequestTracer::sampled(int flow, std::int64_t ordinal) const {
  if (threshold_ == 0) return false;
  if (threshold_ == ~std::uint64_t{0}) return true;
  return mix64(mix64(seed_ ^ kSampleTag) ^ flow_key(flow, ordinal)) <
         threshold_;
}

std::uint64_t RequestTracer::make_trace_id(int flow,
                                           std::int64_t ordinal) const {
  const std::uint64_t id =
      mix64(mix64(seed_ ^ kTraceTag) ^ flow_key(flow, ordinal));
  return id != 0 ? id : 1;
}

std::int32_t RequestTracer::start(ReqKind kind, std::uint64_t trace_id,
                                  std::uint64_t parent_id, int flow,
                                  std::string_view cls, std::int32_t attempt,
                                  std::int64_t key, Bytes bytes, Nanos now) {
  if (threshold_ == 0) return -1;
  if (spans_.size() >= max_spans_) {
    ++capped_;
    return -1;
  }
  RequestSpan span;
  span.trace_id = trace_id;
  const std::uint64_t id = mix64(
      mix64(seed_ ^ kSpanTag ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host_))
             << 32)) ^
      next_seq_++);
  span.span_id = id != 0 ? id : 1;
  span.parent_id = parent_id;
  span.kind = kind;
  span.host = host_;
  span.flow = flow;
  span.cls = std::string(cls);
  span.attempt = attempt;
  span.key = key;
  span.bytes = bytes;
  span.start = now;
  spans_.push_back(std::move(span));
  return static_cast<std::int32_t>(spans_.size() - 1);
}

void RequestTracer::finish(std::int32_t id, Nanos now, bool ok) {
  if (id < 0) return;
  require(static_cast<std::size_t>(id) < spans_.size(), "bad request span id");
  RequestSpan& span = spans_[static_cast<std::size_t>(id)];
  if (span.closed()) return;
  span.end = now;
  span.ok = ok;
}

std::uint64_t RequestTracer::span_id_of(std::int32_t id) const {
  if (id < 0) return 0;
  require(static_cast<std::size_t>(id) < spans_.size(), "bad request span id");
  return spans_[static_cast<std::size_t>(id)].span_id;
}

void join_request_spans(std::vector<RequestSpan>& spans) {
  // Client attempts index the joins: by (flow, key) for service spans,
  // by (flow, time window) for switch hops.
  struct AttemptRef {
    std::uint64_t trace_id;
    std::uint64_t span_id;
    Nanos start;
    Nanos end;
  };
  std::map<std::pair<int, std::int64_t>, AttemptRef> by_key;
  std::map<int, std::vector<AttemptRef>> by_flow;
  for (const RequestSpan& span : spans) {
    if (span.kind != ReqKind::attempt || span.trace_id == 0) continue;
    const AttemptRef ref{span.trace_id, span.span_id, span.start,
                         span.closed() ? span.end : span.start};
    if (span.key >= 0) by_key.emplace(std::make_pair(span.flow, span.key), ref);
    by_flow[span.flow].push_back(ref);
  }
  for (auto& [flow, refs] : by_flow) {
    (void)flow;
    std::sort(refs.begin(), refs.end(),
              [](const AttemptRef& a, const AttemptRef& b) {
                return a.start < b.start;
              });
  }

  for (RequestSpan& span : spans) {
    if (span.trace_id != 0) continue;
    if (span.kind == ReqKind::service) {
      const auto it = by_key.find({span.flow, span.key});
      if (it == by_key.end()) continue;  // unsampled request
      span.trace_id = it->second.trace_id;
      span.parent_id = it->second.span_id;
    } else if (span.kind == ReqKind::hop) {
      const auto it = by_flow.find(span.flow);
      if (it == by_flow.end()) continue;
      // The attempt whose on-the-wire window contains the hop's enqueue
      // instant.  Attempts on one flow never overlap (the client is
      // serial per connection), so at most one matches.
      for (const AttemptRef& ref : it->second) {
        if (ref.start <= span.start && span.start <= ref.end) {
          span.trace_id = ref.trace_id;
          span.parent_id = ref.span_id;
          break;
        }
      }
    }
  }

  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [](const RequestSpan& span) {
                               return span.trace_id == 0;
                             }),
              spans.end());
  std::sort(spans.begin(), spans.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
}

std::vector<RequestClassSummary> summarize_request_classes(
    const std::vector<RequestSpan>& spans) {
  struct ClassAccum {
    Histogram e2e;
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    Nanos slowest_hop = 0;
  };
  std::map<std::string, ClassAccum> classes;
  std::map<std::uint64_t, std::string> trace_cls;
  for (const RequestSpan& span : spans) {
    if (span.kind != ReqKind::request || !span.closed()) continue;
    ClassAccum& accum = classes[span.cls];
    ++accum.requests;
    accum.e2e.record(span.end - span.start);
    trace_cls.emplace(span.trace_id, span.cls);
  }
  for (const RequestSpan& span : spans) {
    const auto it = trace_cls.find(span.trace_id);
    if (it == trace_cls.end()) continue;
    ClassAccum& accum = classes[it->second];
    if (span.kind == ReqKind::attempt && span.attempt > 0) ++accum.retries;
    if (span.kind == ReqKind::hop && span.closed()) {
      accum.slowest_hop = std::max(accum.slowest_hop, span.end - span.start);
    }
  }
  std::vector<RequestClassSummary> out;
  out.reserve(classes.size());
  for (const auto& [cls, accum] : classes) {
    RequestClassSummary summary;
    summary.cls = cls;
    summary.requests = accum.requests;
    summary.p50 = accum.e2e.percentile(0.50);
    summary.p99 = accum.e2e.percentile(0.99);
    summary.retries = accum.retries;
    summary.slowest_hop = accum.slowest_hop;
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace hostsim::obs
