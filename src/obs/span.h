// Per-skb pipeline spans (Fig. 1 of the paper).
//
// A span follows one sampled payload frame through the receive pipeline,
// stamping the simulated time it reaches each stage:
//
//   nic_dma -> irq -> gro -> tcpip -> wakeup -> copy
//
// Not every stage fires for every skb (frames arriving during an active
// NAPI poll get no IRQ, LRO/GRO-merged trailing segments donate their
// journey to the head skb), so stamps are optional and per-stage
// durations are measured between *present* stamps only.
//
// Sampling is a pure hash of (seed, host, flow, seq): deterministic,
// stateless, and independent of the run's RNG streams — attaching the
// tracer can never perturb simulation outcomes.
#ifndef HOSTSIM_OBS_SPAN_H
#define HOSTSIM_OBS_SPAN_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "sim/units.h"

namespace hostsim::obs {

/// Fig. 1 receive-pipeline stages, in pipeline order.
enum class Stage : std::uint8_t {
  nic_dma,  ///< frame DMA'd into a posted rx descriptor
  irq,      ///< IRQ fired / NAPI kicked for the frame's queue
  gro,      ///< softirq processing: skb built and fed to GRO
  tcpip,    ///< TCP/IP layer accepted the skb
  wakeup,   ///< blocked reader notified (scheduler wakeup)
  copy,     ///< payload copied (or remapped) to user space
};

inline constexpr std::size_t kNumStages = 6;

std::string_view to_string(Stage stage);

inline constexpr Nanos kUnstamped = -1;

struct Span {
  int host = 0;
  int flow = -1;
  std::int64_t seq = 0;
  Bytes len = 0;
  std::array<Nanos, kNumStages> at{kUnstamped, kUnstamped, kUnstamped,
                                   kUnstamped, kUnstamped, kUnstamped};
  bool completed = false;
};

/// Aggregated per-stage latency: the time from a stage's stamp to the
/// next present stamp ("total" rows cover nic_dma -> copy).
struct StageSummary {
  std::string stage;
  std::uint64_t count = 0;
  Nanos p50 = 0;
  Nanos p99 = 0;
};

class SpanTracer {
 public:
  SpanTracer(std::uint64_t seed, double sample_rate, std::size_t max_spans);

  bool enabled() const { return threshold_ > 0; }

  /// Deterministically decides whether (host, flow, seq) is sampled;
  /// returns the new span id, or -1 (not sampled / disabled / capped).
  std::int32_t maybe_start(int host, int flow, std::int64_t seq, Bytes len,
                           Nanos now);

  /// Stamps `stage` at `now` if not already stamped (idempotent — IRQ
  /// re-kicks and retransmit overlaps hit the same span twice).
  void stamp(std::int32_t id, Stage stage, Nanos now);

  /// Marks the span finished and folds its stage durations into the
  /// aggregate and per-flow histograms.  Stamp `copy` first.  Returns
  /// the completed span (or nullptr for a no-op call) so callers can
  /// feed downstream consumers like the latency monitor.
  const Span* complete(std::int32_t id);

  const std::vector<Span>& spans() const { return spans_; }

  std::uint64_t started() const { return started_; }
  std::uint64_t completed() const { return completed_; }
  /// Spans dropped because max_spans was reached.
  std::uint64_t capped() const { return capped_; }

  /// Aggregate per-stage breakdown over completed spans (stages with no
  /// samples are omitted; a trailing "total" row covers end-to-end).
  std::vector<StageSummary> summary() const;

  /// Same breakdown restricted to one flow.
  std::vector<StageSummary> flow_summary(int flow) const;

  /// Flows with at least one completed span, ascending.
  std::vector<int> flows() const;

  /// Per-stage + end-to-end histogram bundle; public so the Observer
  /// can merge per-host tracers into one cluster-wide breakdown
  /// (Histogram::merge is order-independent, so the merged summary is
  /// identical at every shard count).
  struct StageHistograms {
    std::array<Histogram, kNumStages> stage;
    Histogram total;
  };

  /// Folds this tracer's aggregate histograms into `into`.
  void merge_summary_into(StageHistograms& into) const;

  /// Renders a merged bundle the same way summary() renders one tracer.
  static std::vector<StageSummary> summarize_merged(
      const StageHistograms& merged);

 private:
  static std::vector<StageSummary> summarize(const StageHistograms& h);
  void fold(const Span& span, StageHistograms& into) const;

  std::uint64_t seed_;
  std::uint64_t threshold_;  ///< sample iff hash < threshold_
  std::size_t max_spans_;
  std::vector<Span> spans_;
  StageHistograms aggregate_;
  std::map<int, StageHistograms> per_flow_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t capped_ = 0;
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_SPAN_H
