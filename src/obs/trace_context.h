// Trace context: the tuple that rides a request across hosts.
//
// A request-scoped trace is identified by a 64-bit trace id minted at
// the request's root (client issue / open-loop arrival) from the same
// splitmix64 hash discipline as span sampling — a pure function of
// (seed, flow, ordinal), never a run-RNG draw.  The context carries the
// trace id plus the parent span id so downstream legs (retry attempts,
// fan-out children, server service) attach as children of the right
// span.  An invalid context (trace_id == 0) means "not sampled": every
// downstream hook is then a single integer compare.
#ifndef HOSTSIM_OBS_TRACE_CONTEXT_H
#define HOSTSIM_OBS_TRACE_CONTEXT_H

#include <cstdint>

namespace hostsim::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = unsampled / no trace
  std::uint64_t parent_span = 0;  ///< span to attach children under

  bool valid() const { return trace_id != 0; }
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_TRACE_CONTEXT_H
