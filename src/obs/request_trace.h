// Request-scoped distributed tracing.
//
// Where pipeline spans (span.h) follow one sampled *frame* through one
// host's receive path, request spans follow one sampled *RPC* end to end
// across hosts: client issue -> connect / retry / backoff -> transport
// send -> per-hop switch queueing -> server service -> completion.
// Fan-out children and retry attempts are sibling spans under one root.
//
// Collection is per *host* (one RequestTracer per host) so a sharded run
// records exactly what the serial run records: every span for host h is
// produced by h's own event stream, which the sharded engine already
// keeps bit-identical per shard.  The cross-host joins — which client
// attempt caused which server service span, which switch hop carried
// which attempt — are resolved deterministically at harvest from
// simulated identifiers ((flow, epoch, ordinal) and time containment),
// never from collection order.
//
// Ids come from the splitmix64 discipline (hash.h): pure functions of
// (seed, host, sequence numbers), so tracing consumes no run RNG and
// artifacts are byte-stable across runs and shard counts.
#ifndef HOSTSIM_OBS_REQUEST_TRACE_H
#define HOSTSIM_OBS_REQUEST_TRACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/units.h"

namespace hostsim::obs {

/// Request-span kinds, from root to leaf.
enum class ReqKind : std::uint8_t {
  request,  ///< root: client-side end-to-end request lifetime
  attempt,  ///< one try on the wire (retries are sibling attempts)
  backoff,  ///< client waiting out a retry backoff
  connect,  ///< (re)connect / handshake leg
  xmit,     ///< transport send: issue until request bytes acked
  service,  ///< server-side processing of one request
  hop,      ///< switch egress port: queueing + serialization + wire
};

inline constexpr std::size_t kNumReqKinds = 7;

std::string_view to_string(ReqKind kind);

struct RequestSpan {
  std::uint64_t trace_id = 0;   ///< 0 until joined (service/hop spans)
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for roots
  ReqKind kind = ReqKind::request;
  int host = 0;                 ///< recording host (< 0 = switch)
  int flow = -1;
  std::string cls;              ///< request class ("rpc", "open_loop", ...)
  std::int32_t attempt = 0;     ///< attempt ordinal within the request
  std::int64_t key = -1;        ///< join key: (epoch << 32) | serve ordinal
  Nanos start = 0;
  Nanos end = -1;               ///< -1 while open
  Bytes bytes = 0;
  bool ok = true;

  bool closed() const { return end >= 0; }
};

/// Per-host request-span collector.  Single writer: only the shard that
/// owns the host ever touches it.
class RequestTracer {
 public:
  RequestTracer() = default;

  void configure(std::uint64_t seed, int host, double trace_rate,
                 std::size_t max_spans);

  bool enabled() const { return threshold_ != 0; }

  /// Deterministic root sampling decision for the `ordinal`-th request
  /// on `flow` — a pure hash, identical at every shard count.
  bool sampled(int flow, std::int64_t ordinal) const;

  /// Mints the trace id for a sampled root (pure hash, never 0).
  std::uint64_t make_trace_id(int flow, std::int64_t ordinal) const;

  /// Opens a span; returns its index, or -1 when disabled or capped.
  /// `trace_id` may be 0 for spans joined later (service).
  std::int32_t start(ReqKind kind, std::uint64_t trace_id,
                     std::uint64_t parent_id, int flow, std::string_view cls,
                     std::int32_t attempt, std::int64_t key, Bytes bytes,
                     Nanos now);

  /// Closes span `id` (no-op for id < 0 or an already-closed span).
  void finish(std::int32_t id, Nanos now, bool ok = true);

  /// Span id of an open span, for parenting children under it.
  std::uint64_t span_id_of(std::int32_t id) const;

  const std::vector<RequestSpan>& spans() const { return spans_; }
  std::uint64_t capped() const { return capped_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t threshold_ = 0;
  int host_ = 0;
  std::size_t max_spans_ = 0;
  std::uint64_t next_seq_ = 0;  ///< per-host span-id sequence
  std::uint64_t capped_ = 0;
  std::vector<RequestSpan> spans_;
};

/// Resolves cross-host links in a merged span set, in place:
///  * service spans adopt (trace_id, parent_id) from the client attempt
///    with the same (flow, key);
///  * hop spans adopt them from the attempt on the same flow whose
///    [start, end] window contains the hop's enqueue time;
///  * spans that never joined a sampled trace are dropped;
///  * the survivors are sorted canonically by (start, trace_id, span_id).
void join_request_spans(std::vector<RequestSpan>& spans);

/// Per-request-class rollup over joined spans.
struct RequestClassSummary {
  std::string cls;
  std::uint64_t requests = 0;  ///< completed root spans
  Nanos p50 = 0;               ///< end-to-end latency percentiles
  Nanos p99 = 0;
  std::uint64_t retries = 0;   ///< attempts beyond each request's first
  Nanos slowest_hop = 0;       ///< worst switch-hop duration in the class
};

std::vector<RequestClassSummary> summarize_request_classes(
    const std::vector<RequestSpan>& spans);

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_REQUEST_TRACE_H
