// Named counter/gauge registry.
//
// The extension point for run-time telemetry: datapath components bump
// Counter cells, and read-only Gauge callbacks snapshot component state
// (cwnd, queue depth, LLC occupancy) when the TimeSeriesSampler ticks.
//
// "Lock-free in simulation": a run executes on one thread of the event
// loop, so counter cells are plain integers — no atomics, no locks —
// yet the registry still gives the isolation of per-name cells instead
// of ad-hoc struct fields.  Parallel sweeps build one Registry per run.
//
// Registration order is deterministic (insertion order), which makes the
// sampler's column order — and therefore every exported artifact —
// byte-stable across runs and across --jobs=N schedules.
#ifndef HOSTSIM_OBS_REGISTRY_H
#define HOSTSIM_OBS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/contract.h"

namespace hostsim::obs {

class Registry {
 public:
  /// Monotone event count owned by the registry (stable address).
  class Counter {
   public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  /// Finds or creates the counter `name`.  The returned reference stays
  /// valid for the registry's lifetime.
  Counter& counter(std::string_view name) {
    for (const Entry& entry : entries_) {
      if (entry.name == name && entry.counter != nullptr) {
        return *entry.counter;
      }
    }
    Entry entry;
    entry.name = std::string(name);
    entry.counter = std::make_unique<Counter>();
    entries_.push_back(std::move(entry));
    return *entries_.back().counter;
  }

  /// Registers a read-only gauge.  `read` must not mutate simulation
  /// state (it runs mid-simulation from the sampler).
  ///
  /// `owner_host` declares which host's state the gauge reads: under a
  /// sharded run only the owning shard's sampler ever calls `read`, so
  /// a gauge must never touch state outside its owner (host -1 = global
  /// instruments owned by shard 0 — only legal when they read state
  /// that shard 0 owns at every shard count).
  ///
  /// A non-empty `fold` names a fold group: at export, consecutive
  /// entries sharing a fold name collapse into one summed column with
  /// that name.  This is how cross-shard aggregates (e.g. total switch
  /// queue depth) stay in the artifacts without any gauge reading
  /// another shard's state.
  void gauge(std::string name, std::function<double()> read,
             int owner_host = -1, std::string fold = {}) {
    require(static_cast<bool>(read), "gauge needs a read callback");
    Entry entry;
    entry.name = std::move(name);
    entry.read = std::move(read);
    entry.owner_host = owner_host;
    entry.fold = std::move(fold);
    entries_.push_back(std::move(entry));
  }

  std::size_t size() const { return entries_.size(); }

  /// Owning host of instrument `index` (-1 = global / shard 0).
  int owner_host(std::size_t index) const {
    return entries_[index].owner_host;
  }

  /// Fold-group name of instrument `index` ("" = exported as-is).
  const std::string& fold(std::size_t index) const {
    return entries_[index].fold;
  }

  /// Instrument names in registration order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_) out.push_back(entry.name);
    return out;
  }

  /// Current value of instrument `index` (registration order).
  double read(std::size_t index) const {
    const Entry& entry = entries_[index];
    if (entry.counter != nullptr) {
      return static_cast<double>(entry.counter->value());
    }
    return entry.read();
  }

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;  ///< set for counters
    std::function<double()> read;      ///< set for gauges
    int owner_host = -1;               ///< host whose state this reads
    std::string fold;                  ///< fold-group name ("" = none)
  };

  std::vector<Entry> entries_;
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_REGISTRY_H
