// Periodic time-series sampler.
//
// Rides the event loop: every `period` it reads its Registry instruments
// (in registration order) into one row.  Sampling events are read-only —
// they charge no cycles, consume no RNG, and never reorder existing
// events — so an instrumented run produces bit-identical Metrics to an
// uninstrumented one.
//
// Shard-awareness: a sampler may be restricted to a subset of registry
// entries (the ones whose owner hosts live on its shard), and its ticks
// are scheduled through the cross-shard delivery band with a canonical
// key (`sent` = the tick time, subkey above every real delivery).  That
// key ranks the tick after *every* other event at the same instant
// regardless of shard count or local insertion sequences, so the values
// a tick observes — and therefore every exported artifact — are
// byte-identical serial vs `--shards=N`.
//
// All instruments must be registered before start(); the column set is
// frozen at the first tick so exported CSV/JSON stay rectangular.
#ifndef HOSTSIM_OBS_SAMPLER_H
#define HOSTSIM_OBS_SAMPLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "sim/event_loop.h"
#include "sim/units.h"

namespace hostsim::obs {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(EventLoop& loop, Registry& registry, Nanos period)
      : loop_(&loop), registry_(&registry), period_(period) {}

  bool enabled() const { return period_ > 0; }

  /// Restricts this sampler to the given registry entries (global
  /// registration indices, ascending).  Call before start(); without a
  /// restriction the sampler covers every entry.
  void restrict_to(std::vector<std::size_t> indices);

  /// Schedules the first tick at now + period.  Call once, after all
  /// instruments are registered.
  void start();

  /// Global registry indices this sampler reads (registration order).
  const std::vector<std::size_t>& indices() const { return indices_; }

  /// Column names, frozen at the first tick (empty before it).
  const std::vector<std::string>& columns() const { return columns_; }

  const std::vector<Nanos>& times() const { return times_; }
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  std::uint64_t ticks() const { return times_.size(); }
  Nanos period() const { return period_; }

 private:
  void tick();

  EventLoop* loop_;
  Registry* registry_;
  Nanos period_;
  bool restricted_ = false;
  std::size_t frozen_size_ = 0;  ///< registry size at the first tick
  std::vector<std::size_t> indices_;
  std::vector<std::string> columns_;
  std::vector<Nanos> times_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_SAMPLER_H
