// Observer: the per-run observability hub.
//
// Owns the counter/gauge registry plus — per host — pipeline span
// tracers, request tracers, and latency monitors, and — per shard —
// time-series samplers.  Datapath components hold a nullable
// `Observer*` (null when observability is off — the disabled path is a
// single pointer compare) and stamp through the inline helpers below.
//
// Shard-awareness: every collection structure is partitioned by the
// same ownership the sharded engine uses (host -> shard), so each shard
// only ever writes its own slices; the cross-shard views (merged
// time-series, merged spans, joined request traces, merged latency
// windows) are computed at harvest from deterministic keys, never from
// collection order.  A serial run uses the identical single-shard code
// path, which is what makes obs artifacts byte-identical at every
// `--shards=N` (pinned by tests/obs/).
//
// Invariant: nothing reachable from an Observer mutates simulation
// state.  Hooks charge no cycles, consume no RNG, and the sampler's
// events are read-only — Metrics from an instrumented run are
// bit-identical to an uninstrumented one (pinned by tests/obs/).
#ifndef HOSTSIM_OBS_OBSERVER_H
#define HOSTSIM_OBS_OBSERVER_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/latency_monitor.h"
#include "obs/obs_config.h"
#include "obs/registry.h"
#include "obs/request_trace.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "sim/event_loop.h"

namespace hostsim::obs {

class Observer {
 public:
  Observer(EventLoop& loop, const ObsConfig& config, std::uint64_t seed);

  const ObsConfig& config() const { return config_; }

  /// Declares the shard topology: `loops[s]` is shard s's event loop,
  /// `shard_of_host[h]` the shard owning host h.  Must run before any
  /// instrument registers or sampling starts.  Without it the Observer
  /// behaves as a single shard on its construction loop (standalone /
  /// unit-test use).
  void attach_topology(const std::vector<EventLoop*>& loops,
                       std::vector<int> shard_of_host);

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Schedules the samplers (no-op when the period is 0): one per
  /// shard, each restricted to the instruments its shard owns.  Call
  /// after every gauge is registered — i.e. once the testbed is built.
  void start_sampler();

  // -- hot-path span helpers (callers already null-checked `this`) --

  std::int32_t span_start(int host, int flow, std::int64_t seq, Bytes len,
                          Nanos now);

  void span_stamp(std::int32_t id, Stage stage, Nanos now) {
    if (id < 0) return;
    tracer_of(id).stamp(index_of(id), stage, now);
  }

  void span_complete(std::int32_t id);

  // -- request tracing --

  bool tracing() const { return config_.tracing_enabled(); }

  /// Host h's request tracer (single writer: h's shard).
  RequestTracer& requests(int host);

  /// Latency-monitor feed for one completed request — called for every
  /// completion (traced or not) so class percentiles are unsampled.
  void request_latency(int host, std::string_view cls, Nanos value,
                       Nanos now);

  // -- harvest views (post-run, single thread) --

  /// Merged time-series: global registration-order columns with fold
  /// groups collapsed into summed aggregate columns.
  struct Series {
    std::vector<std::string> columns;
    std::vector<Nanos> times;
    std::vector<std::vector<double>> rows;
  };
  Series merged_series() const;

  /// All pipeline spans, in (host, per-host start order) — the order a
  /// serial single-tracer run would have recorded per host.
  std::vector<Span> merged_spans() const;

  /// All request spans (unjoined), host order; the caller appends
  /// switch hop spans and runs join_request_spans().
  std::vector<RequestSpan> merged_requests() const;

  /// Cluster-wide per-stage breakdown (order-independent merge of the
  /// per-host aggregates).
  std::vector<StageSummary> stage_summary() const;

  /// Merged continuous-latency monitor (windowed histograms of every
  /// host folded together).
  LatencyMonitor merged_latency() const;

  std::uint64_t spans_started() const;
  std::uint64_t spans_completed() const;

 private:
  /// Span ids pack (host, per-host index) so stamp/complete calls route
  /// without the callers carrying the host around.
  static constexpr int kSpanIdxBits = 20;
  static constexpr std::int32_t kSpanIdxMask = (1 << kSpanIdxBits) - 1;

  SpanTracer& tracer_of(std::int32_t id) {
    return span_tracers_[static_cast<std::size_t>(id >> kSpanIdxBits)];
  }
  static std::int32_t index_of(std::int32_t id) { return id & kSpanIdxMask; }

  /// Grows the per-host structures through `host` (pre-attach only; an
  /// attached Observer has them fixed at the host count).
  void ensure_host(int host);

  ObsConfig config_;
  std::uint64_t seed_;
  EventLoop* default_loop_;
  Registry registry_;
  bool attached_ = false;
  std::vector<EventLoop*> loops_;
  std::vector<int> shard_of_host_;
  std::vector<SpanTracer> span_tracers_;        // per host
  std::vector<RequestTracer> request_tracers_;  // per host
  std::vector<LatencyMonitor> monitors_;        // per host
  std::vector<std::unique_ptr<TimeSeriesSampler>> samplers_;  // per shard
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_OBSERVER_H
