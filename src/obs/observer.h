// Observer: the per-run observability hub.
//
// Owns the span tracer, counter/gauge registry, and time-series sampler
// for one simulation.  Datapath components hold a nullable `Observer*`
// (null when observability is off — the disabled path is a single
// pointer compare) and stamp pipeline stages through the inline helpers
// below.
//
// Invariant: nothing reachable from an Observer mutates simulation
// state.  Hooks charge no cycles, consume no RNG, and the sampler's
// events are read-only — Metrics from an instrumented run are
// bit-identical to an uninstrumented one (pinned by tests/obs/).
#ifndef HOSTSIM_OBS_OBSERVER_H
#define HOSTSIM_OBS_OBSERVER_H

#include <cstdint>

#include "obs/obs_config.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "sim/event_loop.h"

namespace hostsim::obs {

class Observer {
 public:
  Observer(EventLoop& loop, const ObsConfig& config, std::uint64_t seed)
      : config_(config),
        spans_(seed, config.span_rate, config.max_spans),
        sampler_(loop, registry_, config.sample_period) {}

  const ObsConfig& config() const { return config_; }

  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  TimeSeriesSampler& sampler() { return sampler_; }
  const TimeSeriesSampler& sampler() const { return sampler_; }

  /// Schedules the sampler (no-op when the period is 0).  Call after
  /// every gauge is registered — i.e. once the testbed is fully built.
  void start_sampler() { sampler_.start(); }

  // -- hot-path span helpers (callers already null-checked `this`) --

  std::int32_t span_start(int host, int flow, std::int64_t seq, Bytes len,
                          Nanos now) {
    return spans_.maybe_start(host, flow, seq, len, now);
  }

  void span_stamp(std::int32_t id, Stage stage, Nanos now) {
    spans_.stamp(id, stage, now);
  }

  void span_complete(std::int32_t id) { spans_.complete(id); }

 private:
  ObsConfig config_;
  Registry registry_;
  SpanTracer spans_;
  TimeSeriesSampler sampler_;
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_OBSERVER_H
