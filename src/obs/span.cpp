#include "obs/span.h"

#include "obs/hash.h"
#include "sim/contract.h"

namespace hostsim::obs {

std::string_view to_string(Stage stage) {
  switch (stage) {
    case Stage::nic_dma: return "nic_dma";
    case Stage::irq: return "irq";
    case Stage::gro: return "gro";
    case Stage::tcpip: return "tcpip";
    case Stage::wakeup: return "wakeup";
    case Stage::copy: return "copy";
  }
  return "?";
}

SpanTracer::SpanTracer(std::uint64_t seed, double sample_rate,
                       std::size_t max_spans)
    : seed_(seed),
      threshold_(rate_to_threshold(sample_rate)),
      max_spans_(max_spans) {}

std::int32_t SpanTracer::maybe_start(int host, int flow, std::int64_t seq,
                                     Bytes len, Nanos now) {
  if (threshold_ == 0) return -1;
  if (threshold_ != ~std::uint64_t{0}) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 32) |
        static_cast<std::uint32_t>(flow);
    const std::uint64_t h =
        mix64(mix64(seed_ ^ key) ^ static_cast<std::uint64_t>(seq));
    if (h >= threshold_) return -1;
  }
  if (spans_.size() >= max_spans_) {
    ++capped_;
    return -1;
  }
  Span span;
  span.host = host;
  span.flow = flow;
  span.seq = seq;
  span.len = len;
  span.at[static_cast<std::size_t>(Stage::nic_dma)] = now;
  spans_.push_back(span);
  ++started_;
  return static_cast<std::int32_t>(spans_.size() - 1);
}

void SpanTracer::stamp(std::int32_t id, Stage stage, Nanos now) {
  if (id < 0) return;
  require(static_cast<std::size_t>(id) < spans_.size(), "bad span id");
  Nanos& slot = spans_[static_cast<std::size_t>(id)].at[
      static_cast<std::size_t>(stage)];
  if (slot == kUnstamped) slot = now;
}

const Span* SpanTracer::complete(std::int32_t id) {
  if (id < 0) return nullptr;
  require(static_cast<std::size_t>(id) < spans_.size(), "bad span id");
  Span& span = spans_[static_cast<std::size_t>(id)];
  if (span.completed) return nullptr;
  span.completed = true;
  ++completed_;
  fold(span, aggregate_);
  fold(span, per_flow_[span.flow]);
  return &span;
}

void SpanTracer::merge_summary_into(StageHistograms& into) const {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    into.stage[i].merge(aggregate_.stage[i]);
  }
  into.total.merge(aggregate_.total);
}

std::vector<StageSummary> SpanTracer::summarize_merged(
    const StageHistograms& merged) {
  return summarize(merged);
}

void SpanTracer::fold(const Span& span, StageHistograms& into) const {
  // Duration of stage i = next present stamp - stamp(i).
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (span.at[i] == kUnstamped) continue;
    for (std::size_t j = i + 1; j < kNumStages; ++j) {
      if (span.at[j] == kUnstamped) continue;
      into.stage[i].record(span.at[j] - span.at[i]);
      break;
    }
  }
  const Nanos first = span.at[static_cast<std::size_t>(Stage::nic_dma)];
  const Nanos last = span.at[static_cast<std::size_t>(Stage::copy)];
  if (first != kUnstamped && last != kUnstamped) {
    into.total.record(last - first);
  }
}

std::vector<StageSummary> SpanTracer::summarize(const StageHistograms& h) {
  std::vector<StageSummary> out;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const Histogram& hist = h.stage[i];
    if (hist.count() == 0) continue;
    out.push_back({std::string(to_string(static_cast<Stage>(i))),
                   hist.count(), hist.percentile(0.50),
                   hist.percentile(0.99)});
  }
  if (h.total.count() > 0) {
    out.push_back({"total", h.total.count(), h.total.percentile(0.50),
                   h.total.percentile(0.99)});
  }
  return out;
}

std::vector<StageSummary> SpanTracer::summary() const {
  return summarize(aggregate_);
}

std::vector<StageSummary> SpanTracer::flow_summary(int flow) const {
  auto it = per_flow_.find(flow);
  if (it == per_flow_.end()) return {};
  return summarize(it->second);
}

std::vector<int> SpanTracer::flows() const {
  std::vector<int> out;
  out.reserve(per_flow_.size());
  for (const auto& [flow, hists] : per_flow_) {
    (void)hists;
    out.push_back(flow);
  }
  return out;
}

}  // namespace hostsim::obs
