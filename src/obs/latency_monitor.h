// Continuous latency monitoring.
//
// An always-on, fixed-shape monitor: every observed latency (pipeline
// stage durations from completed spans, end-to-end request latencies per
// class) lands in a log-linear histogram for the fixed time window
// containing its completion instant.  Windowed p50/p99 readouts answer
// "when did latency go bad", and a threshold flagger turns the window
// sequence into SLO-breach episodes with degradation-onset and recovery
// timestamps.
//
// Like every obs:: structure, monitors are per host — fed only by the
// host's own completions — and merged at harvest (Histogram::merge is
// order-independent), so sharded runs reproduce serial artifacts
// byte-for-byte.  Histograms are log-linear (sim/stats.h): memory per
// (series, window) cell is fixed regardless of sample count.
#ifndef HOSTSIM_OBS_LATENCY_MONITOR_H
#define HOSTSIM_OBS_LATENCY_MONITOR_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "sim/units.h"

namespace hostsim::obs {

class LatencyMonitor {
 public:
  LatencyMonitor() = default;

  void configure(Nanos window) { window_ = window; }

  bool enabled() const { return window_ > 0; }

  /// Records one latency observation completing at `now` under `series`
  /// (e.g. "stage.copy", "class.rpc").
  void record(std::string_view series, Nanos value, Nanos now);

  /// Folds `other`'s cells into this monitor (harvest-time merge).
  void merge(const LatencyMonitor& other);

  /// One windowed percentile readout.
  struct WindowStats {
    std::string series;
    Nanos window_start = 0;
    std::uint64_t count = 0;
    Nanos p50 = 0;
    Nanos p99 = 0;
  };

  /// All (series, window) cells, sorted by (series, window_start).
  std::vector<WindowStats> readout() const;

  /// An interval during which a series' windowed p99 exceeded the SLO.
  struct SloEpisode {
    std::string series;
    Nanos onset = 0;      ///< start of the first breaching window
    Nanos recover = -1;   ///< start of the first healed window; -1 = never
    Nanos worst_p99 = 0;  ///< worst windowed p99 inside the episode
  };

  /// Threshold flagger: scans each series' windows in order and returns
  /// the breach episodes against `slo_p99` (empty when slo_p99 <= 0).
  std::vector<SloEpisode> episodes(Nanos slo_p99) const;

 private:
  Nanos window_ = 0;
  /// (series, window index) -> histogram of values completing there.
  std::map<std::string, std::map<std::int64_t, Histogram>> cells_;
};

}  // namespace hostsim::obs

#endif  // HOSTSIM_OBS_LATENCY_MONITOR_H
