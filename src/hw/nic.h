// 100Gbps NIC model: rx queues with descriptor rings, DMA via the page
// pool, DDIO insertion, IRQ + NAPI hand-off, flow steering, and LRO.
//
// One rx queue per core (queue index == core id), as in the paper's
// setup where IRQs are explicitly mapped per flow.  The steering table
// decides which queue (and therefore which IRQ core) receives each
// flow's frames — aRFS steers to the application's core, the paper's
// worst-case no-aRFS configuration steers to a NIC-remote core.
//
// Descriptors are pre-posted with page-pool memory and consumed in ring
// order; the driver replenishes them during NAPI (paper §2.1).  The ring
// size therefore sets the page-reuse distance: with a small ring the
// same pages recycle while still LLC-resident (DMA write-hits), with a
// large ring every DMA write allocates a cold page into the DDIO ways —
// one of the two fig. 3(e) mechanisms.
#ifndef HOSTSIM_HW_NIC_H
#define HOSTSIM_HW_NIC_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/core.h"
#include "hw/llc_model.h"
#include "hw/numa_topology.h"
#include "hw/link.h"
#include "mem/iommu.h"
#include "mem/page_allocator.h"
#include "mem/page_pool.h"
#include "sim/fault_injector.h"
#include "sim/timer.h"

namespace hostsim {

namespace obs {
class Observer;
}  // namespace obs

/// Receiver-side flow steering (paper Table 2).  RSS/RPS hash the
/// 4-tuple to a core; RFS/aRFS find the application's core.
enum class SteeringMode : std::uint8_t { rss, rps, rfs, arfs };

class Nic {
 public:
  struct Config {
    Bytes mtu_payload = 1500;  ///< max TCP payload per wire frame
    int ring_size = 1024;      ///< rx descriptors per queue
    bool dca = true;           ///< DDIO: DMA into the NIC-local LLC
    bool lro = false;          ///< hardware receive coalescing
    Bytes lro_max_bytes = 65536;
    Nanos irq_moderation = 8'000;  ///< rx interrupt coalescing window
  };

  /// A frame handed to the stack by NAPI, with its DMA'd page fragments.
  struct PolledFrame {
    Frame frame;
    FragmentVec fragments;
    int segments = 1;  ///< >1 when LRO merged multiple wire frames
    Nanos arrived_at = 0;
  };

  /// Invoked in softirq task context on the queue's core when NAPI work
  /// is pending; the stack polls frames and calls napi_complete().
  using RxHandler = std::function<void(Core&, int queue)>;

  /// `host_id` is this NIC's host index in the topology; it is stamped
  /// into every transmitted frame so a Switch can forward by destination.
  Nic(EventLoop& loop, const Config& config, const NumaTopology& topo,
      std::vector<Core*> cores, std::vector<LlcModel*> llcs,
      PageAllocator& allocator, Iommu& iommu, Link& wire, Link::Side side,
      int host_id = 0);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const Config& config() const { return config_; }
  Bytes mtu_payload() const { return config_.mtu_payload; }
  /// Memory backing one rx descriptor (one MTU frame + headers).
  Bytes descriptor_bytes() const {
    return config_.mtu_payload + kFrameHeaderBytes;
  }

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  /// Attaches the run's fault injector (rx-ring stalls, page-pool
  /// pressure); propagated to every queue's page pool.
  void set_fault_injector(FaultInjector* faults);

  /// Attaches the run's observability hub (null = disabled; the hooks
  /// reduce to one pointer compare).
  void set_observer(obs::Observer* observer) { obs_ = observer; }

  // --- Steering ----------------------------------------------------------

  /// Directs `flow`'s frames to queue `queue` (== the IRQ core id).
  void steer_flow(int flow, int queue);
  int queue_for_flow(int flow) const;

  // --- TX ----------------------------------------------------------------

  /// Records that `flow`'s peer lives on `host`; transmitted frames for
  /// that flow carry it as dst_host.  Unmapped flows default to the
  /// back-to-back peer (1 - host_id).
  void set_flow_dst(int flow, int host);

  /// Hands a wire frame to the link (segmentation cost, if any, was paid
  /// by the stack; TSO segmentation is free by definition), stamping the
  /// topology addresses the switch forwards by.
  void transmit(Frame frame) {
    if (faults_ != nullptr && !faults_->host_up(host_id_)) {
      // Crashed host: nothing leaves a dark NIC (e.g. an in-flight RTO
      // task racing the crash's socket teardown).
      faults_->note_crash_drop();
      return;
    }
    frame.src_host = static_cast<std::int16_t>(host_id_);
    if (auto it = flow_dst_.find(frame.flow); it != flow_dst_.end()) {
      frame.dst_host = static_cast<std::int16_t>(it->second);
    } else {
      frame.dst_host = static_cast<std::int16_t>(1 - host_id_);
    }
    wire_->transmit(side_, frame);
  }

  // --- RX ----------------------------------------------------------------

  /// Link delivery entry point: consumes the next posted descriptor
  /// (DMAing into its pages, with DDIO insertion) or drops the frame.
  void receive(Frame frame);

  /// Takes one frame (or one LRO-merged train) from the queue backlog
  /// and charges the IOMMU unmap.  Softirq task context only.
  std::optional<PolledFrame> poll_one(Core& core, int queue);

  /// Number of frames waiting in a queue's backlog.
  std::size_t backlog(int queue) const;

  /// Ends a NAPI round: replenishes rx descriptors (allocating fresh
  /// page spans) and either re-posts the poll (backlog remains) or
  /// re-arms the queue's IRQ.
  void napi_complete(Core& core, int queue);

  /// Posted (ready) descriptors of a queue; for tests.
  int posted_descriptors(int queue) const;

  // --- Stats --------------------------------------------------------------

  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t ring_drops() const { return ring_drops_; }
  std::uint64_t irqs() const { return irqs_; }

  /// Adds every page the NIC currently holds a reference to (posted rx
  /// descriptors, queue backlogs, pool carving pages) to `held`; used by
  /// the end-of-run leak sweep.
  void collect_held_pages(std::unordered_set<const Page*>& held) const;

 private:
  struct RxDescriptor {
    FragmentVec fragments;
  };
  struct BacklogEntry {
    Frame frame;
    FragmentVec fragments;
    Nanos arrived;
  };
  struct RxQueue {
    std::deque<RxDescriptor> posted;
    std::deque<BacklogEntry> backlog;
    std::unique_ptr<PagePool> pool;
    bool napi_active = false;
    /// Interrupt-moderation window timer; armed() doubles as the old
    /// irq_pending flag.  Behind a unique_ptr because Timer is
    /// address-stable (non-movable) while RxQueue lives in a vector.
    std::unique_ptr<Timer> irq_timer;
    /// Budget-exhausted NAPI continuations run here: user priority, so
    /// they round-robin with application threads exactly like ksoftirqd
    /// competing under CFS.
    Context ksoftirqd{"ksoftirqd", /*kernel=*/false};
  };

  void dma_into_cache(const FragmentVec& fragments);
  void replenish(Core& core, RxQueue& queue);
  void release_fragments(Core& core, FragmentVec& fragments);
  void kick_napi(int queue);

  EventLoop* loop_;
  Config config_;
  NumaTopology topo_;
  std::vector<Core*> cores_;
  std::vector<LlcModel*> llcs_;
  PageAllocator* allocator_;
  Iommu* iommu_;
  Link* wire_;
  Link::Side side_;
  int host_id_ = 0;
  FaultInjector* faults_ = nullptr;
  obs::Observer* obs_ = nullptr;
  Context softirq_{"softirq", /*kernel=*/true};

  std::vector<RxQueue> queues_;
  std::unordered_map<int, int> steering_;
  std::unordered_map<int, int> flow_dst_;  ///< flow -> peer host index
  RxHandler rx_handler_;

  std::uint64_t rx_frames_ = 0;
  std::uint64_t ring_drops_ = 0;
  std::uint64_t irqs_ = 0;
};

}  // namespace hostsim

#endif  // HOSTSIM_HW_NIC_H
