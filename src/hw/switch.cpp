#include "hw/switch.h"

#include <algorithm>
#include <utility>

#include "sim/contract.h"

namespace hostsim {

Switch::Switch(EventLoop& loop, const Config& config)
    : loop_(&loop), config_(config) {
  require(config.num_ports >= 2, "switch needs at least two ports");
  require(config.port_gbps > 0, "switch port rate must be positive");
  require(config.buffer_bytes >= 0, "switch buffer must be non-negative");
  require(config.ecn_threshold_bytes >= 0,
          "switch ECN threshold must be non-negative");
  ports_.resize(static_cast<std::size_t>(config.num_ports));
  for (Port& port : ports_) port.loop = loop_;
  route_.assign(static_cast<std::size_t>(config.num_ports), -1);
}

void Switch::attach_port(int port, std::function<void(Frame)> deliver) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  ports_[static_cast<std::size_t>(port)].sink = std::move(deliver);
}

void Switch::set_route(int host, int port) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  if (host >= static_cast<int>(route_.size())) {
    route_.resize(static_cast<std::size_t>(host) + 1, -1);
  }
  require(host >= 0, "host index must be non-negative");
  route_[static_cast<std::size_t>(host)] = port;
}

void Switch::set_fault_injector(FaultInjector* faults) {
  for (Port& port : ports_) port.faults = faults;
}

void Switch::shard_port(int port, EventLoop& loop, FaultInjector* faults) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  Port& p = ports_[static_cast<std::size_t>(port)];
  p.loop = &loop;
  p.faults = faults;
  sharded_ = true;
}

void Switch::enable_trace(std::size_t capacity) {
  trace_capacity_ = capacity;
  tracer_ = Tracer(capacity, kFabricTraceHost);
  for (Port& port : ports_) port.trace.capacity = capacity;
}

void Switch::enable_hop_trace(std::size_t capacity) {
  for (Port& port : ports_) port.hops.capacity = capacity;
}

void Switch::HopRing::record(const HopRecord& entry) {
  if (capacity == 0) return;
  if (ring.size() < capacity) {
    ring.push_back(entry);
    return;
  }
  ring[next] = entry;
  next = (next + 1) % capacity;
}

void Switch::HopRing::append_to(std::vector<HopRecord>& out) const {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    out.push_back(ring[(next + i) % ring.size()]);
  }
}

std::vector<Switch::HopRecord> Switch::hop_snapshot() const {
  std::vector<HopRecord> merged;
  for (const Port& port : ports_) port.hops.append_to(merged);
  std::stable_sort(merged.begin(), merged.end(),
                   [](const HopRecord& a, const HopRecord& b) {
                     if (a.enqueue != b.enqueue) return a.enqueue < b.enqueue;
                     return a.port < b.port;
                   });
  return merged;
}

void Switch::PortRing::record(RankedRecord entry) {
  if (capacity == 0) return;
  if (ring.size() < capacity) {
    ring.push_back(entry);
    return;
  }
  ring[next] = entry;
  next = (next + 1) % capacity;
}

void Switch::PortRing::append_to(std::vector<RankedRecord>& out) const {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    out.push_back(ring[(next + i) % ring.size()]);
  }
}

std::vector<TraceRecord> Switch::trace_snapshot() const {
  if (!sharded_) return tracer_.snapshot();
  std::vector<RankedRecord> merged;
  for (const Port& port : ports_) port.trace.append_to(merged);
  std::sort(merged.begin(), merged.end(),
            [](const RankedRecord& a, const RankedRecord& b) {
              if (a.record.at != b.record.at) return a.record.at < b.record.at;
              if (a.rank.sent != b.rank.sent) return a.rank.sent < b.rank.sent;
              if (a.rank.sub != b.rank.sub) return a.rank.sub < b.rank.sub;
              return a.idx < b.idx;
            });
  // Per-port rings each keep their newest `capacity` records, a
  // superset of the serial global ring's newest `capacity` — trimming
  // the merged sequence to the newest `capacity` therefore reproduces
  // the serial keep-newest contents exactly.
  if (merged.size() > trace_capacity_) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(trace_capacity_));
  }
  std::vector<TraceRecord> records;
  records.reserve(merged.size());
  for (const RankedRecord& entry : merged) records.push_back(entry.record);
  return records;
}

const Switch::PortStats& Switch::port_stats(int port) const {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  return ports_[static_cast<std::size_t>(port)].stats;
}

std::uint64_t Switch::forwarded() const {
  std::uint64_t total = 0;
  for (const Port& port : ports_) total += port.stats.forwarded;
  return total;
}

std::uint64_t Switch::dropped() const {
  std::uint64_t total = 0;
  for (const Port& port : ports_) total += port.stats.drops;
  return total;
}

std::uint64_t Switch::ecn_marked() const {
  std::uint64_t total = 0;
  for (const Port& port : ports_) total += port.stats.ecn_marks;
  return total;
}

std::uint64_t Switch::flap_drops() const {
  std::uint64_t total = 0;
  for (const Port& port : ports_) total += port.stats.flap_drops;
  return total;
}

Bytes Switch::peak_queue_bytes() const {
  Bytes peak = 0;
  for (const Port& port : ports_) {
    peak = std::max(peak, port.stats.peak_queue_bytes);
  }
  return peak;
}

Bytes Switch::queued_bytes() const {
  Bytes total = 0;
  for (const Port& port : ports_) total += port.stats.queued_bytes;
  return total;
}

void Switch::record_trace(Port& egress_port, const Rank* rank, int* idx,
                          Nanos at, TraceKind kind, int flow, std::int64_t a,
                          std::int64_t b) {
  if (rank == nullptr) {
    tracer_.record(at, kind, flow, a, b);
    return;
  }
  if (egress_port.trace.capacity == 0) return;
  RankedRecord entry;
  entry.record = TraceRecord{at, kind, kFabricTraceHost, flow, a, b};
  entry.rank = *rank;
  entry.idx = (*idx)++;
  egress_port.trace.record(entry);
}

void Switch::ingress(int port, Frame frame) {
  route_and_queue(port, std::move(frame), nullptr);
}

void Switch::ingress_ranked(int port, Frame frame, Nanos sent,
                            std::uint64_t sub) {
  const Rank rank{sent, sub};
  route_and_queue(port, std::move(frame), &rank);
}

void Switch::route_and_queue(int port, Frame frame, const Rank* rank) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  const int dst = frame.dst_host;
  require(dst >= 0 && dst < static_cast<int>(route_.size()),
          "frame destination host is unroutable");
  const int out = route_[static_cast<std::size_t>(dst)];
  require(out >= 0, "no route installed for destination host");
  Port& egress_port = ports_[static_cast<std::size_t>(out)];
  require(static_cast<bool>(egress_port.sink), "egress port not attached");
  EventLoop* loop = egress_port.loop;
  int trace_idx = 0;

  // Egress-side flap: the downlink cable (port `out` / host `dst`'s
  // uplink) is down, so the frame is lost leaving the switch.  The
  // ingress-side window was already applied by the uplink Link itself.
  if (egress_port.faults != nullptr && !egress_port.faults->link_up(out)) {
    ++egress_port.stats.flap_drops;
    egress_port.faults->note_flap_drop();
    return;
  }

  // Blackholed egress: the frame is silently swallowed — no link-down
  // signal, no counter visible to the endpoints.  Only retries mask it.
  if (egress_port.faults != nullptr &&
      egress_port.faults->port_blackholed(out)) {
    egress_port.faults->note_blackhole_drop();
    return;
  }

  if (config_.buffer_bytes == 0) {
    // Pass-through: hand the frame to the destination host at the
    // ingress instant.  The uplink Link already charged serialization
    // and propagation, so a 2-host pass-through cluster reproduces the
    // back-to-back wire timing exactly.
    ++egress_port.stats.forwarded;
    egress_port.sink(frame);
    return;
  }

  const Bytes wire_bytes = frame.wire_bytes();
  if (egress_port.stats.queued_bytes + wire_bytes > config_.buffer_bytes) {
    ++egress_port.stats.drops;
    record_trace(egress_port, rank, &trace_idx, loop->now(),
                 TraceKind::fabric_drop, frame.flow, out,
                 egress_port.stats.queued_bytes);
    return;
  }

  if (config_.ecn_threshold_bytes > 0 &&
      egress_port.stats.queued_bytes >= config_.ecn_threshold_bytes) {
    frame.ecn = true;
    ++egress_port.stats.ecn_marks;
    record_trace(egress_port, rank, &trace_idx, loop->now(),
                 TraceKind::ecn_mark, frame.flow, out,
                 egress_port.stats.queued_bytes);
  }

  egress_port.stats.queued_bytes += wire_bytes;
  egress_port.stats.peak_queue_bytes =
      std::max(egress_port.stats.peak_queue_bytes,
               egress_port.stats.queued_bytes);
  ++egress_port.stats.forwarded;
  record_trace(egress_port, rank, &trace_idx, loop->now(),
               TraceKind::fabric_enqueue, frame.flow, out,
               egress_port.stats.queued_bytes);

  // Output-queued store-and-forward: serialize behind whatever is
  // already queued on the egress port, then propagate down the link.
  // Everything below runs on the egress port's own loop, which in a
  // sharded cluster is the destination host's shard.
  const Nanos start = std::max(loop->now(), egress_port.busy_until);
  const Nanos tx_end = start + serialization_delay(wire_bytes, config_.port_gbps);
  egress_port.busy_until = tx_end;
  if (egress_port.hops.capacity != 0) {
    egress_port.hops.record(HopRecord{out, frame.flow, loop->now(),
                                      tx_end + config_.propagation,
                                      wire_bytes});
  }
  // The frame occupies the FIFO until its serialization completes at
  // tx_end; the downlink propagation happens outside the buffer.
  const SlotPool<Frame>::Slot slot = egress_port.in_flight.acquire(frame);
  loop->schedule_at(tx_end, [this, out, slot] {
    Port& p = ports_[static_cast<std::size_t>(out)];
    p.stats.queued_bytes -= p.in_flight[slot].wire_bytes();
    p.loop->schedule_at(p.loop->now() + config_.propagation,
                        [this, out, slot] {
      Port& q = ports_[static_cast<std::size_t>(out)];
      Frame delivered = q.in_flight[slot];
      q.in_flight.release(slot);
      q.sink(delivered);
    });
  });
}

}  // namespace hostsim
