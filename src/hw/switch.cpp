#include "hw/switch.h"

#include <algorithm>
#include <utility>

#include "sim/contract.h"

namespace hostsim {

Switch::Switch(EventLoop& loop, const Config& config)
    : loop_(&loop), config_(config) {
  require(config.num_ports >= 2, "switch needs at least two ports");
  require(config.port_gbps > 0, "switch port rate must be positive");
  require(config.buffer_bytes >= 0, "switch buffer must be non-negative");
  require(config.ecn_threshold_bytes >= 0,
          "switch ECN threshold must be non-negative");
  ports_.resize(static_cast<std::size_t>(config.num_ports));
  route_.assign(static_cast<std::size_t>(config.num_ports), -1);
}

void Switch::attach_port(int port, std::function<void(Frame)> deliver) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  ports_[static_cast<std::size_t>(port)].sink = std::move(deliver);
}

void Switch::set_route(int host, int port) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  if (host >= static_cast<int>(route_.size())) {
    route_.resize(static_cast<std::size_t>(host) + 1, -1);
  }
  require(host >= 0, "host index must be non-negative");
  route_[static_cast<std::size_t>(host)] = port;
}

void Switch::enable_trace(std::size_t capacity) {
  tracer_ = Tracer(capacity, kFabricTraceHost);
}

const Switch::PortStats& Switch::port_stats(int port) const {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  return ports_[static_cast<std::size_t>(port)].stats;
}

Bytes Switch::queued_bytes() const {
  Bytes total = 0;
  for (const Port& port : ports_) total += port.stats.queued_bytes;
  return total;
}

void Switch::ingress(int port, Frame frame) {
  require(port >= 0 && port < num_ports(), "switch port out of range");
  const int dst = frame.dst_host;
  require(dst >= 0 && dst < static_cast<int>(route_.size()),
          "frame destination host is unroutable");
  const int out = route_[static_cast<std::size_t>(dst)];
  require(out >= 0, "no route installed for destination host");
  Port& egress_port = ports_[static_cast<std::size_t>(out)];
  require(static_cast<bool>(egress_port.sink), "egress port not attached");

  // Egress-side flap: the downlink cable (port `out` / host `dst`'s
  // uplink) is down, so the frame is lost leaving the switch.  The
  // ingress-side window was already applied by the uplink Link itself.
  if (faults_ != nullptr && !faults_->link_up(out)) {
    ++egress_port.stats.flap_drops;
    ++flap_drops_;
    faults_->note_flap_drop();
    return;
  }

  // Blackholed egress: the frame is silently swallowed — no link-down
  // signal, no counter visible to the endpoints.  Only retries mask it.
  if (faults_ != nullptr && faults_->port_blackholed(out)) {
    faults_->note_blackhole_drop();
    return;
  }

  if (config_.buffer_bytes == 0) {
    // Pass-through: hand the frame to the destination host at the
    // ingress instant.  The uplink Link already charged serialization
    // and propagation, so a 2-host pass-through cluster reproduces the
    // back-to-back wire timing exactly.
    ++egress_port.stats.forwarded;
    ++forwarded_;
    egress_port.sink(frame);
    return;
  }

  const Bytes wire_bytes = frame.wire_bytes();
  if (egress_port.stats.queued_bytes + wire_bytes > config_.buffer_bytes) {
    ++egress_port.stats.drops;
    ++dropped_;
    tracer_.record(loop_->now(), TraceKind::fabric_drop, frame.flow, out,
                   egress_port.stats.queued_bytes);
    return;
  }

  if (config_.ecn_threshold_bytes > 0 &&
      egress_port.stats.queued_bytes >= config_.ecn_threshold_bytes) {
    frame.ecn = true;
    ++egress_port.stats.ecn_marks;
    ++ecn_marked_;
    tracer_.record(loop_->now(), TraceKind::ecn_mark, frame.flow, out,
                   egress_port.stats.queued_bytes);
  }

  egress_port.stats.queued_bytes += wire_bytes;
  egress_port.stats.peak_queue_bytes =
      std::max(egress_port.stats.peak_queue_bytes,
               egress_port.stats.queued_bytes);
  peak_queue_bytes_ = std::max(peak_queue_bytes_,
                               egress_port.stats.queued_bytes);
  ++egress_port.stats.forwarded;
  ++forwarded_;
  tracer_.record(loop_->now(), TraceKind::fabric_enqueue, frame.flow, out,
                 egress_port.stats.queued_bytes);

  // Output-queued store-and-forward: serialize behind whatever is
  // already queued on the egress port, then propagate down the link.
  const Nanos start = std::max(loop_->now(), egress_port.busy_until);
  const Nanos tx_end = start + serialization_delay(wire_bytes, config_.port_gbps);
  egress_port.busy_until = tx_end;
  // The frame occupies the FIFO until its serialization completes at
  // tx_end; the downlink propagation happens outside the buffer.
  const SlotPool<Frame>::Slot slot = in_flight_.acquire(frame);
  loop_->schedule_at(tx_end, [this, out, slot] {
    Port& p = ports_[static_cast<std::size_t>(out)];
    p.stats.queued_bytes -= in_flight_[slot].wire_bytes();
    loop_->schedule_at(loop_->now() + config_.propagation, [this, out, slot] {
      Frame delivered = in_flight_[slot];
      in_flight_.release(slot);
      ports_[static_cast<std::size_t>(out)].sink(delivered);
    });
  });
}

}  // namespace hostsim
