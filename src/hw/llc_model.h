// Last-level cache model with a DDIO (Direct Cache Access) way partition.
//
// Granularity is one 4KiB page: the datapath's DMA writes and data copies
// are streaming, so residency of a page's cachelines is strongly
// correlated and a page-granular LRU set-associative model captures the
// phenomena the paper measures:
//
//  * DMA writes (DDIO) may allocate only into `ddio_ways` of each set
//    (Intel DDIO reserves 2 of the LLC ways, ~18% => ~3MB of the 20MB L3
//    in the paper's testbed).  A DMA write to a page already cached
//    updates it in place.
//  * Demand reads (data copy) hit or miss; a miss does NOT fill the LLC,
//    matching the non-inclusive Skylake-SP LLC where demand data goes to
//    the core's L2 and clean L2 victims are dropped.  Dirty write-backs
//    (sender-side copies into kernel buffers) do insert().
//  * With DCA disabled, DMA writes *invalidate* cached copies instead
//    (coherent DMA to DRAM), so the first copy access always misses.
//
// Both fig. 3(e) effects emerge structurally: queued data beyond the DDIO
// capacity is evicted before the application copies it, and large NIC
// rings spread DMA targets over many distinct pages, defeating in-place
// write hits even when total in-flight data is small.
#ifndef HOSTSIM_HW_LLC_MODEL_H
#define HOSTSIM_HW_LLC_MODEL_H

#include <cstdint>
#include <vector>

#include "mem/page.h"
#include "sim/stats.h"

namespace hostsim {

struct LlcConfig {
  int sets = 256;      ///< page-granular sets (256 * 18 * 4KiB ~= 18.9MB)
  int ways = 18;
  int ddio_ways = 5;   ///< DDIO-reserved share (see EXPERIMENTS.md on sizing)
};

class LlcModel {
 public:
  explicit LlcModel(const LlcConfig& config = {});

  /// DMA write of one page via DDIO.  Updates in place on a write hit;
  /// otherwise allocates into the DDIO ways, evicting their LRU page.
  void dma_write(PageId page);

  /// DMA write with DCA disabled: invalidates any cached copy.
  void dma_invalidate(PageId page);

  /// Demand read (data copy): returns true on hit.  A miss does not
  /// fill the cache (non-inclusive LLC; see header comment).
  bool touch_read(PageId page);

  /// Demand write fill (sender-side copy into fresh kernel pages).
  void insert(PageId page);

  bool contains(PageId page) const;

  /// Pages currently resident (for tests / occupancy assertions).
  int occupancy() const;
  Bytes capacity_bytes() const;
  Bytes ddio_capacity_bytes() const;

  /// Copy-read hit/miss statistics.
  const HitRate& read_stats() const { return reads_; }
  HitRate& read_stats() { return reads_; }
  /// DMA write-hit (page still cached) statistics.
  const HitRate& dma_stats() const { return dma_; }
  /// DDIO allocations that were evicted before ever being read.
  std::uint64_t wasted_ddio_fills() const { return wasted_ddio_fills_; }

 private:
  struct Way {
    PageId page = 0;  ///< 0 = empty
    std::uint64_t last_use = 0;
    bool referenced = false;  ///< read at least once since fill
    bool ddio_fill = false;
  };

  std::size_t set_of(PageId page) const;
  Way* find(std::size_t set, PageId page);

  LlcConfig config_;
  std::vector<Way> ways_;  // sets * ways, row-major
  std::uint64_t tick_ = 0;

  HitRate reads_;
  HitRate dma_;
  std::uint64_t wasted_ddio_fills_ = 0;
};

}  // namespace hostsim

#endif  // HOSTSIM_HW_LLC_MODEL_H
