// A point-to-point physical link: each direction serializes frames at
// the configured line rate and delivers them after the propagation
// delay.  Baseline loss is Bernoulli per-frame, matching the paper's
// §3.6 methodology of a programmable switch dropping packets at a
// configured rate; an attached FaultInjector generalizes this with
// Gilbert–Elliott bursty loss, link flaps, and frame corruption.
//
// Two topologies use it:
//   - back-to-back (the paper's testbed): one Link, Side::a = sender
//     host, Side::b = receiver host;
//   - cluster (hw::Switch): one Link per host, Side::a = the host,
//     Side::b = the switch ingress.  Frames carry (src_host, dst_host)
//     stamped by the NIC so the switch can forward by destination.
#ifndef HOSTSIM_HW_LINK_H
#define HOSTSIM_HW_LINK_H

#include <array>
#include <cstdint>
#include <functional>

#include "mem/pool.h"
#include "sim/event_loop.h"
#include "sim/fault_injector.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace hostsim {

/// Protocol header bytes per frame (Ethernet + IP + TCP incl. options).
inline constexpr Bytes kFrameHeaderBytes = 66;

/// A frame on the wire.  Data frames carry payload; ACK frames carry
/// cumulative/selective acknowledgment state and the advertised window.
struct Frame {
  int flow = -1;
  std::int64_t seq = 0;   ///< payload start sequence (data frames)
  Bytes payload = 0;

  bool is_ack = false;
  std::int64_t ack_seq = 0;    ///< cumulative ACK (ACK frames)
  std::int64_t sack_high = 0;  ///< highest contiguous OFO seq (simplified SACK)
  Bytes window = 0;            ///< advertised receive window (ACK frames)

  bool ecn = false;      ///< CE mark (data) / ECE echo (ACKs)
  bool corrupt = false;  ///< delivered, but the receiver's checksum fails
  bool is_rst = false;   ///< connection reset (header-only; is_ack set too
                         ///< so it rides the NIC's copybreak path)
  bool is_syn = false;   ///< handshake: SYN (alone) or SYN-ACK (with is_ack)
  bool is_fin = false;   ///< active close (header-only; is_ack set too)
  Nanos echo_ts = -1;    ///< echoed send timestamp, for RTT estimation
  Nanos sent_at = 0;

  /// Host addressing, stamped by the transmitting NIC.  A back-to-back
  /// link ignores them; a Switch forwards by dst_host.
  std::int16_t src_host = 0;
  std::int16_t dst_host = -1;

  /// Observability span id assigned by the receiving NIC (-1 = not
  /// sampled).  Pure telemetry — never affects forwarding or protocol.
  std::int32_t obs_span = -1;

  // --- Message-transport extensions (HomaTransport; TCP ignores them) ---
  std::int64_t msg_id = -1;  ///< message identifier within the flow
  Bytes msg_len = 0;         ///< total message length (Homa data frames)
  bool is_grant = false;     ///< receiver grant: ack_seq = granted offset edge
  bool is_resend = false;    ///< resend request: seq = lowest missing offset

  Bytes wire_bytes() const { return payload + kFrameHeaderBytes; }
};

class Link {
 public:
  struct Config {
    double gbps = 100.0;
    Nanos propagation = 1'000;    ///< one-way, back-to-back servers
    double loss_rate = 0.0;       ///< Bernoulli per-frame drop probability
    Nanos ecn_threshold = 0;      ///< mark CE when egress delay exceeds; 0=off
  };

  /// Endpoint indices for the two attached ends.
  enum class Side { a = 0, b = 1 };

  Link(EventLoop& loop, const Config& config);

  /// Sharded-cluster form: the loss stream is provided explicitly
  /// (pulled from the root RNG in serial construction order) instead of
  /// forked from `loop`, so shard-local loops replay the serial run's
  /// stream assignments exactly.
  Link(EventLoop& loop, const Config& config, Rng rng);

  /// Registers the frame sink for one side (its NIC's receive path, or
  /// a switch port's ingress).
  void attach(Side side, std::function<void(Frame)> deliver);

  /// Sharded-cluster hook: when set for `side`, every frame toward it
  /// is handed to `forward(at, sent, frame)` instead of being scheduled
  /// locally — `at` is the computed delivery time (tx_end + propagation)
  /// and `sent` the transmit timestamp, which seeds the deterministic
  /// cross-shard ordering key (EventLoop::schedule_delivery).  The
  /// forwarder routes by Frame::dst_host to the owning shard's loop.
  using RemoteForward = std::function<void(Nanos at, Nanos sent, Frame)>;
  void set_remote_forward(Side side, RemoteForward forward) {
    forwards_[static_cast<std::size_t>(side)] = std::move(forward);
  }

  /// Attaches the run's fault injector (bursty loss, flaps, corruption).
  /// The baseline Bernoulli `loss_rate` stays active independently.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Identity used for per-link fault addressing (FaultPlan link/port
  /// indices); in a cluster this is the attached host's index.
  void set_id(int id) { id_ = id; }
  int id() const { return id_; }

  /// Queues a frame for transmission from `from` toward the other side.
  void transmit(Side from, Frame frame);

  /// Current egress queueing delay on `from`'s direction.
  Nanos egress_delay(Side from) const;

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t ecn_marked() const { return ecn_marked_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }

 private:
  EventLoop* loop_;
  Config config_;
  int id_ = 0;
  std::array<std::function<void(Frame)>, 2> sinks_{};
  std::array<RemoteForward, 2> forwards_{};
  std::array<Nanos, 2> busy_until_{};
  // Frames propagating toward a sink are parked here so the delivery
  // event captures only a 4-byte slot handle — a Frame (~72 bytes)
  // captured by value would spill the event's inline storage.
  SlotPool<Frame> in_flight_;
  Rng rng_;
  FaultInjector* faults_ = nullptr;

  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t ecn_marked_ = 0;
  Bytes bytes_delivered_ = 0;
};


}  // namespace hostsim

#endif  // HOSTSIM_HW_LINK_H
