#include "hw/link.h"

#include <algorithm>
#include <utility>

#include "sim/contract.h"

namespace hostsim {

Link::Link(EventLoop& loop, const Config& config)
    : Link(loop, config, loop.rng().fork()) {}

Link::Link(EventLoop& loop, const Config& config, Rng rng)
    : loop_(&loop), config_(config), rng_(rng) {
  require(config.gbps > 0, "link rate must be positive");
  require(config.loss_rate >= 0 && config.loss_rate <= 1,
          "loss rate must be a probability");
}

void Link::attach(Side side, std::function<void(Frame)> deliver) {
  sinks_[static_cast<std::size_t>(side)] = std::move(deliver);
}

Nanos Link::egress_delay(Side from) const {
  const Nanos busy = busy_until_[static_cast<std::size_t>(from)];
  return std::max<Nanos>(0, busy - loop_->now());
}

void Link::transmit(Side from, Frame frame) {
  const auto dir = static_cast<std::size_t>(from);
  const std::size_t to = 1 - dir;
  require(static_cast<bool>(sinks_[to]), "destination side not attached");

  const Nanos start = std::max(loop_->now(), busy_until_[dir]);
  const Nanos tx_end =
      start + serialization_delay(frame.wire_bytes(), config_.gbps);
  busy_until_[dir] = tx_end;

  if (config_.ecn_threshold > 0 && start - loop_->now() > config_.ecn_threshold) {
    frame.ecn = true;
    ++ecn_marked_;
  }
  if (faults_ != nullptr) {
    switch (faults_->on_frame(id_, static_cast<int>(dir))) {
      case FaultInjector::WireFault::none:
        break;
      case FaultInjector::WireFault::drop_random:
      case FaultInjector::WireFault::drop_bursty:
        ++dropped_;  // in-network loss, same as the Bernoulli path
        return;
      case FaultInjector::WireFault::drop_flap:
        return;  // link down: not a switch drop, counted by the injector
      case FaultInjector::WireFault::corrupt:
        frame.corrupt = true;  // delivered; the receiver's checksum fails
        break;
    }
  }
  if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
    ++dropped_;
    return;
  }

  ++delivered_;
  bytes_delivered_ += frame.payload;
  if (forwards_[to]) {
    forwards_[to](tx_end + config_.propagation, loop_->now(),
                  std::move(frame));
    return;
  }
  const SlotPool<Frame>::Slot slot = in_flight_.acquire(frame);
  loop_->schedule_at(tx_end + config_.propagation, [this, to, slot] {
    Frame delivered = in_flight_[slot];
    in_flight_.release(slot);
    sinks_[to](delivered);
  });
}

}  // namespace hostsim
