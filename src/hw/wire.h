// Transitional header: the two-server testbed's Wire is now the
// point-to-point hw::Link (see hw/link.h); the in-network model moved to
// hw::Switch.  Kept so older includes keep compiling.
#ifndef HOSTSIM_HW_WIRE_H
#define HOSTSIM_HW_WIRE_H

#include "hw/link.h"

#endif  // HOSTSIM_HW_WIRE_H
