// NUMA topology of the simulated server.
//
// Defaults mirror the paper's testbed: 4 sockets x 6 cores, with the
// 100Gbps NIC attached to socket 0.
#ifndef HOSTSIM_HW_NUMA_TOPOLOGY_H
#define HOSTSIM_HW_NUMA_TOPOLOGY_H

#include "sim/contract.h"

namespace hostsim {

struct NumaTopology {
  int num_nodes = 4;
  int cores_per_node = 6;
  int nic_node = 0;

  int num_cores() const { return num_nodes * cores_per_node; }

  int node_of_core(int core) const {
    require(core >= 0 && core < num_cores(), "core id out of range");
    return core / cores_per_node;
  }

  bool is_nic_local(int core) const { return node_of_core(core) == nic_node; }

  /// The `index`-th core of `node` (for deterministic pinning).
  int core_on_node(int node, int index) const {
    require(node >= 0 && node < num_nodes, "node id out of range");
    require(index >= 0 && index < cores_per_node, "core index out of range");
    return node * cores_per_node + index;
  }

  /// A deterministic NIC-remote core choice: the `index`-th core of the
  /// node farthest from the NIC (used to model the paper's worst-case
  /// IRQ mapping when aRFS is disabled).
  int remote_core(int index) const {
    const int node = (nic_node + num_nodes - 1) % num_nodes;
    return core_on_node(node, index % cores_per_node);
  }
};

}  // namespace hostsim

#endif  // HOSTSIM_HW_NUMA_TOPOLOGY_H
