// Output-queued switch fabric for the N-host cluster topology.
//
// Each host's uplink Link delivers frames to one ingress port; the
// switch forwards by Frame::dst_host.  Two operating modes:
//
//   - pass-through (buffer_bytes == 0): frames are handed to the
//     destination host's sink at the ingress instant, with no extra
//     serialization, queueing, or propagation.  A 2-host cluster in
//     this mode is timing-identical to the back-to-back testbed — the
//     determinism argument the cluster refactor rests on (see
//     tests/core/cluster_test.cpp).
//
//   - output-queued (buffer_bytes > 0): every egress port owns a
//     bounded drop-tail FIFO of at most `buffer_bytes` of wire bytes,
//     serializes at `port_gbps`, and delivers after `propagation`.
//     When the instantaneous queue occupancy at enqueue time is at or
//     above `ecn_threshold_bytes`, the frame is CE-marked — the
//     DCTCP-style in-fabric congestion signal the paper's endpoint-only
//     marking could not express.
//
// The model is deterministic and RNG-free: drops are pure drop-tail,
// marks are pure threshold comparisons.  Per-port flap faults are
// consulted through the FaultInjector using the port index as the link
// id (port i and host i's uplink are one "cable").
//
// Sharding: all mutable per-frame state (busy_until, FIFO occupancy,
// stats, in-flight slots, trace ring) already lives per egress port, so
// a sharded cluster partitions the switch by port — shard_port() rebinds
// each port to the loop and fault injector of the shard owning its
// destination host, and ingress executes there (frames reach it through
// the cross-shard delivery band carrying a (sent, sub) ordering key —
// see sim/sharded_executor.h).  Aggregate counters are derived from the
// per-port stats, and the fabric trace is merged from per-port rings
// sorted by the delivery key, reproducing the serial recording order.
#ifndef HOSTSIM_HW_SWITCH_H
#define HOSTSIM_HW_SWITCH_H

#include <cstdint>
#include <vector>

#include "hw/link.h"
#include "mem/pool.h"
#include "sim/event_loop.h"
#include "sim/fault_injector.h"
#include "sim/trace.h"
#include "sim/units.h"

namespace hostsim {

class Switch {
 public:
  struct Config {
    int num_ports = 2;
    double port_gbps = 100.0;      ///< egress serialization rate per port
    Nanos propagation = 1'000;     ///< switch -> host downlink delay
    Bytes buffer_bytes = 0;        ///< per-port FIFO bound; 0 = pass-through
    Bytes ecn_threshold_bytes = 0; ///< CE-mark at/above this occupancy; 0 = off
  };

  /// One egress hop observed by the request tracer: a frame's dwell in
  /// this switch, from FIFO enqueue to delivery at the host NIC.  Both
  /// instants are computed at enqueue time (the egress schedule is
  /// deterministic), so the record is complete when written.
  struct HopRecord {
    int port = 0;
    int flow = -1;
    Nanos enqueue = 0;
    Nanos deliver = 0;  ///< tx_end + propagation
    Bytes bytes = 0;
  };

  /// Per-port counters, exposed for metrics and fault tests.
  struct PortStats {
    std::uint64_t forwarded = 0;   ///< frames enqueued toward this port
    std::uint64_t drops = 0;       ///< drop-tail losses at this port
    std::uint64_t ecn_marks = 0;   ///< frames CE-marked at this port
    std::uint64_t flap_drops = 0;  ///< frames lost to a port-down window
    Bytes peak_queue_bytes = 0;    ///< high-water FIFO occupancy
    Bytes queued_bytes = 0;        ///< instantaneous FIFO occupancy
  };

  Switch(EventLoop& loop, const Config& config);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  const Config& config() const { return config_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  /// Registers the host-bound frame sink behind `port` (the host NIC's
  /// receive path).
  void attach_port(int port, std::function<void(Frame)> deliver);

  /// Routes frames for `host` out of `port`.
  void set_route(int host, int port);

  /// Per-port flap faults; pass-through/egress consults link_up(port).
  /// Serial form: every port consults the same injector.
  void set_fault_injector(FaultInjector* faults);

  /// Sharded form: rebinds `port` to the owning shard's loop and fault
  /// injector.  Ingress for frames bound to this port must then execute
  /// on that shard (the cluster's delivery routing guarantees it), and
  /// trace records go to the port's own ranked ring.
  void shard_port(int port, EventLoop& loop, FaultInjector* faults);

  /// Fabric flight recorder (fabric_enqueue / fabric_drop / ecn_mark);
  /// capacity 0 disables, host field is kFabricTraceHost.
  void enable_trace(std::size_t capacity);
  const Tracer& tracer() const { return tracer_; }

  /// Fabric trace in serial recording order: the single ring when
  /// serial, the per-port rings merged on the (at, sent, sub, idx)
  /// delivery key when sharded.
  std::vector<TraceRecord> trace_snapshot() const;

  /// Hop recorder for request tracing: keeps the newest `capacity`
  /// records per egress port; 0 disables.  Each port's stream is
  /// written only by the shard owning it and (by the delivery-band
  /// ordering contract) has identical contents at every shard count.
  void enable_hop_trace(std::size_t capacity);

  /// All retained hops, canonically ordered by (enqueue, port) with
  /// per-port insertion order preserved.
  std::vector<HopRecord> hop_snapshot() const;

  /// Ingress entry point: one frame arriving from `port`'s uplink.
  void ingress(int port, Frame frame);

  /// Sharded ingress: executes on the egress port's shard; (sent, sub)
  /// is the frame's cross-shard delivery key, which ranks its trace
  /// records deterministically in the merged fabric trace.
  void ingress_ranked(int port, Frame frame, Nanos sent, std::uint64_t sub);

  // --- Stats (aggregates derived from the per-port counters) --------------

  const PortStats& port_stats(int port) const;
  std::uint64_t forwarded() const;
  std::uint64_t dropped() const;
  std::uint64_t ecn_marked() const;
  std::uint64_t flap_drops() const;
  Bytes peak_queue_bytes() const;
  /// Instantaneous occupancy across all ports.
  Bytes queued_bytes() const;

 private:
  /// Frame delivery key; orders trace records from concurrent shards.
  struct Rank {
    Nanos sent = 0;
    std::uint64_t sub = 0;
  };

  /// One fabric trace record plus its merge key.
  struct RankedRecord {
    TraceRecord record;
    Rank rank;
    std::int32_t idx = 0;  ///< record index within one ingress call
  };

  /// Keep-newest ring of ranked records (per port, sharded mode only).
  struct PortRing {
    std::size_t capacity = 0;
    std::vector<RankedRecord> ring;
    std::size_t next = 0;

    void record(RankedRecord entry);
    void append_to(std::vector<RankedRecord>& out) const;
  };

  /// Keep-newest ring of hop records (per port).
  struct HopRing {
    std::size_t capacity = 0;
    std::vector<HopRecord> ring;
    std::size_t next = 0;

    void record(const HopRecord& entry);
    void append_to(std::vector<HopRecord>& out) const;
  };

  struct Port {
    std::function<void(Frame)> sink;
    Nanos busy_until = 0;
    PortStats stats;
    EventLoop* loop = nullptr;       ///< owning shard's loop (serial: global)
    FaultInjector* faults = nullptr;
    // Frames serializing/propagating toward this port's host; per-port
    // so concurrent shards never share a slab.
    SlotPool<Frame> in_flight;
    PortRing trace;
    HopRing hops;
  };

  void route_and_queue(int port, Frame frame, const Rank* rank);
  void record_trace(Port& egress_port, const Rank* rank, int* idx, Nanos at,
                    TraceKind kind, int flow, std::int64_t a, std::int64_t b);

  EventLoop* loop_;
  Config config_;
  bool sharded_ = false;
  std::size_t trace_capacity_ = 0;
  std::vector<Port> ports_;
  std::vector<int> route_;  ///< host index -> egress port
  Tracer tracer_;
};

/// TraceRecord::host value used by fabric-side events.
inline constexpr int kFabricTraceHost = -1;

}  // namespace hostsim

#endif  // HOSTSIM_HW_SWITCH_H
