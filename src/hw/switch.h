// Output-queued switch fabric for the N-host cluster topology.
//
// Each host's uplink Link delivers frames to one ingress port; the
// switch forwards by Frame::dst_host.  Two operating modes:
//
//   - pass-through (buffer_bytes == 0): frames are handed to the
//     destination host's sink at the ingress instant, with no extra
//     serialization, queueing, or propagation.  A 2-host cluster in
//     this mode is timing-identical to the back-to-back testbed — the
//     determinism argument the cluster refactor rests on (see
//     tests/core/cluster_test.cpp).
//
//   - output-queued (buffer_bytes > 0): every egress port owns a
//     bounded drop-tail FIFO of at most `buffer_bytes` of wire bytes,
//     serializes at `port_gbps`, and delivers after `propagation`.
//     When the instantaneous queue occupancy at enqueue time is at or
//     above `ecn_threshold_bytes`, the frame is CE-marked — the
//     DCTCP-style in-fabric congestion signal the paper's endpoint-only
//     marking could not express.
//
// The model is deterministic and RNG-free: drops are pure drop-tail,
// marks are pure threshold comparisons.  Per-port flap faults are
// consulted through the FaultInjector using the port index as the link
// id (port i and host i's uplink are one "cable").
#ifndef HOSTSIM_HW_SWITCH_H
#define HOSTSIM_HW_SWITCH_H

#include <cstdint>
#include <vector>

#include "hw/link.h"
#include "mem/pool.h"
#include "sim/event_loop.h"
#include "sim/fault_injector.h"
#include "sim/trace.h"
#include "sim/units.h"

namespace hostsim {

class Switch {
 public:
  struct Config {
    int num_ports = 2;
    double port_gbps = 100.0;      ///< egress serialization rate per port
    Nanos propagation = 1'000;     ///< switch -> host downlink delay
    Bytes buffer_bytes = 0;        ///< per-port FIFO bound; 0 = pass-through
    Bytes ecn_threshold_bytes = 0; ///< CE-mark at/above this occupancy; 0 = off
  };

  /// Per-port counters, exposed for metrics and fault tests.
  struct PortStats {
    std::uint64_t forwarded = 0;   ///< frames enqueued toward this port
    std::uint64_t drops = 0;       ///< drop-tail losses at this port
    std::uint64_t ecn_marks = 0;   ///< frames CE-marked at this port
    std::uint64_t flap_drops = 0;  ///< frames lost to a port-down window
    Bytes peak_queue_bytes = 0;    ///< high-water FIFO occupancy
    Bytes queued_bytes = 0;        ///< instantaneous FIFO occupancy
  };

  Switch(EventLoop& loop, const Config& config);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  const Config& config() const { return config_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  /// Registers the host-bound frame sink behind `port` (the host NIC's
  /// receive path).
  void attach_port(int port, std::function<void(Frame)> deliver);

  /// Routes frames for `host` out of `port`.
  void set_route(int host, int port);

  /// Per-port flap faults; pass-through/egress consults link_up(port).
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Fabric flight recorder (fabric_enqueue / fabric_drop / ecn_mark);
  /// capacity 0 disables, host field is kFabricTraceHost.
  void enable_trace(std::size_t capacity);
  const Tracer& tracer() const { return tracer_; }

  /// Ingress entry point: one frame arriving from `port`'s uplink.
  void ingress(int port, Frame frame);

  // --- Stats --------------------------------------------------------------

  const PortStats& port_stats(int port) const;
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t ecn_marked() const { return ecn_marked_; }
  std::uint64_t flap_drops() const { return flap_drops_; }
  Bytes peak_queue_bytes() const { return peak_queue_bytes_; }
  /// Instantaneous occupancy across all ports.
  Bytes queued_bytes() const;

 private:
  struct Port {
    std::function<void(Frame)> sink;
    Nanos busy_until = 0;
    PortStats stats;
  };

  void egress(int port, Frame frame);

  EventLoop* loop_;
  Config config_;
  std::vector<Port> ports_;
  std::vector<int> route_;  ///< host index -> egress port
  SlotPool<Frame> in_flight_;
  FaultInjector* faults_ = nullptr;
  Tracer tracer_;

  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t ecn_marked_ = 0;
  std::uint64_t flap_drops_ = 0;
  Bytes peak_queue_bytes_ = 0;
};

/// TraceRecord::host value used by fabric-side events.
inline constexpr int kFabricTraceHost = -1;

}  // namespace hostsim

#endif  // HOSTSIM_HW_SWITCH_H
