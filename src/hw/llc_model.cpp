#include "hw/llc_model.h"

#include "sim/contract.h"

namespace hostsim {
namespace {

/// Stafford's mix13 finalizer: spreads page ids across sets the way
/// physical page placement spreads addresses across the real cache.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

LlcModel::LlcModel(const LlcConfig& config) : config_(config) {
  require(config.sets > 0 && config.ways > 0, "cache must have sets and ways");
  require(config.ddio_ways >= 0 && config.ddio_ways <= config.ways,
          "ddio_ways must be within [0, ways]");
  ways_.assign(static_cast<std::size_t>(config.sets) *
                   static_cast<std::size_t>(config.ways),
               Way{});
}

std::size_t LlcModel::set_of(PageId page) const {
  return static_cast<std::size_t>(mix(page) %
                                  static_cast<std::uint64_t>(config_.sets));
}

LlcModel::Way* LlcModel::find(std::size_t set, PageId page) {
  Way* row = &ways_[set * static_cast<std::size_t>(config_.ways)];
  for (int w = 0; w < config_.ways; ++w) {
    if (row[w].page == page) return &row[w];
  }
  return nullptr;
}

void LlcModel::dma_write(PageId page) {
  require(page != 0, "page id 0 is reserved");
  const std::size_t set = set_of(page);
  ++tick_;
  if (Way* way = find(set, page)) {
    way->last_use = tick_;
    dma_.hit();
    return;
  }
  dma_.miss();
  // Allocate within the DDIO ways only.
  Way* row = &ways_[set * static_cast<std::size_t>(config_.ways)];
  Way* victim = nullptr;
  for (int w = 0; w < config_.ddio_ways; ++w) {
    if (row[w].page == 0) {
      victim = &row[w];
      break;
    }
    if (victim == nullptr || row[w].last_use < victim->last_use) {
      victim = &row[w];
    }
  }
  if (victim == nullptr) return;  // ddio_ways == 0: DMA bypasses the cache
  if (victim->page != 0 && victim->ddio_fill && !victim->referenced) {
    ++wasted_ddio_fills_;
  }
  *victim = Way{page, tick_, /*referenced=*/false, /*ddio_fill=*/true};
}

void LlcModel::dma_invalidate(PageId page) {
  require(page != 0, "page id 0 is reserved");
  if (Way* way = find(set_of(page), page)) *way = Way{};
}

bool LlcModel::touch_read(PageId page) {
  require(page != 0, "page id 0 is reserved");
  const std::size_t set = set_of(page);
  ++tick_;
  if (Way* way = find(set, page)) {
    way->last_use = tick_;
    way->referenced = true;
    reads_.hit();
    return true;
  }
  // Non-inclusive LLC (Skylake-SP): a demand read pulls the line toward
  // the core's L2 and does NOT install it here — clean L2 victims are
  // silently dropped.  A missed page therefore stays cold until the next
  // DMA write allocates it again, which is what keeps the recycled rx
  // page working set from becoming permanently LLC-resident.
  reads_.miss();
  return false;
}

void LlcModel::insert(PageId page) {
  const std::size_t set = set_of(page);
  ++tick_;
  if (Way* way = find(set, page)) {
    way->last_use = tick_;
    return;
  }
  Way* row = &ways_[set * static_cast<std::size_t>(config_.ways)];
  Way* victim = &row[0];
  for (int w = 0; w < config_.ways; ++w) {
    if (row[w].page == 0) {
      victim = &row[w];
      break;
    }
    if (row[w].last_use < victim->last_use) victim = &row[w];
  }
  if (victim->page != 0 && victim->ddio_fill && !victim->referenced) {
    ++wasted_ddio_fills_;
  }
  *victim = Way{page, tick_, /*referenced=*/true, /*ddio_fill=*/false};
}

bool LlcModel::contains(PageId page) const {
  return const_cast<LlcModel*>(this)->find(set_of(page), page) != nullptr;
}

int LlcModel::occupancy() const {
  int count = 0;
  for (const Way& way : ways_) count += way.page != 0;
  return count;
}

Bytes LlcModel::capacity_bytes() const {
  return static_cast<Bytes>(config_.sets) * config_.ways * kPageBytes;
}

Bytes LlcModel::ddio_capacity_bytes() const {
  return static_cast<Bytes>(config_.sets) * config_.ddio_ways * kPageBytes;
}

}  // namespace hostsim
