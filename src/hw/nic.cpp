#include "hw/nic.h"

#include <utility>

#include "obs/observer.h"
#include "sim/contract.h"

namespace hostsim {
namespace {

std::uint64_t mix_flow(int flow) {
  auto x = static_cast<std::uint64_t>(flow) + 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

}  // namespace

Nic::Nic(EventLoop& loop, const Config& config, const NumaTopology& topo,
         std::vector<Core*> cores, std::vector<LlcModel*> llcs,
         PageAllocator& allocator, Iommu& iommu, Link& wire, Link::Side side,
         int host_id)
    : loop_(&loop),
      config_(config),
      topo_(topo),
      cores_(std::move(cores)),
      llcs_(std::move(llcs)),
      allocator_(&allocator),
      iommu_(&iommu),
      wire_(&wire),
      side_(side),
      host_id_(host_id) {
  require(config.ring_size > 0, "ring must have descriptors");
  require(config.mtu_payload > 0, "mtu must be positive");
  require(!cores_.empty(), "NIC needs cores for IRQ dispatch");
  require(static_cast<int>(llcs_.size()) == topo_.num_nodes,
          "one LLC per NUMA node expected");
  queues_.resize(cores_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    queues_[i].pool = std::make_unique<PagePool>(allocator, iommu);
    queues_[i].irq_timer = std::make_unique<Timer>(loop, [this, i] {
      RxQueue& q = queues_[i];
      if (!q.napi_active && !q.backlog.empty()) {
        q.napi_active = true;
        kick_napi(static_cast<int>(i));
      }
    });
    // Driver init: pre-post the full ring.  Runs as a softirq task at
    // t=0 so the page allocations are charged in a proper task context.
    cores_[i]->post(softirq_, [this, i](Core& core) {
      replenish(core, queues_[i]);
    });
  }
  wire_->attach(side_, [this](Frame frame) { receive(std::move(frame)); });
}

void Nic::set_fault_injector(FaultInjector* faults) {
  faults_ = faults;
  for (RxQueue& queue : queues_) queue.pool->set_fault_injector(faults);
}

void Nic::steer_flow(int flow, int queue) {
  require(queue >= 0 && queue < static_cast<int>(queues_.size()),
          "steering to nonexistent queue");
  steering_[flow] = queue;
}

int Nic::queue_for_flow(int flow) const {
  if (auto it = steering_.find(flow); it != steering_.end()) return it->second;
  return static_cast<int>(mix_flow(flow) % queues_.size());
}

void Nic::set_flow_dst(int flow, int host) {
  require(host >= 0, "flow destination host must be non-negative");
  flow_dst_[flow] = host;
}

void Nic::replenish(Core& core, RxQueue& queue) {
  const int target = config_.ring_size;
  while (static_cast<int>(queue.posted.size() + queue.backlog.size()) <
         target) {
    RxDescriptor descriptor;
    descriptor.fragments = queue.pool->alloc_span(core, descriptor_bytes());
    if (descriptor.fragments.empty()) {
      // Page-pool pressure denied the allocation: leave the ring short
      // and retry on the next NAPI round, exactly like a failed
      // GFP_ATOMIC refill in a real driver.
      break;
    }
    queue.posted.push_back(std::move(descriptor));
  }
}

void Nic::receive(Frame frame) {
  ++rx_frames_;
  const int index = queue_for_flow(frame.flow);
  RxQueue& queue = queues_[static_cast<std::size_t>(index)];
  if (faults_ != nullptr && faults_->ring_stalled(host_id_, index)) {
    // Descriptor-fetch stall (PCIe backpressure): the queue cannot
    // consume descriptors, so every arriving frame is dropped on the
    // floor — ACKs included.
    faults_->note_ring_stall_drop();
    return;
  }
  if (faults_ != nullptr && !faults_->host_up(host_id_)) {
    // Crashed host: the NIC is dark, nothing is received or answered.
    faults_->note_crash_drop();
    return;
  }
  FragmentVec fragments;
  if (frame.payload > 0) {
    if (queue.posted.empty()) {
      ++ring_drops_;
      return;
    }
    RxDescriptor descriptor = std::move(queue.posted.front());
    queue.posted.pop_front();
    // The DMA itself costs no CPU; it lands in the LLC iff DCA applies.
    dma_into_cache(descriptor.fragments);
    fragments = std::move(descriptor.fragments);
    if (obs_ != nullptr && !frame.is_ack) {
      frame.obs_span = obs_->span_start(host_id_, frame.flow, frame.seq,
                                        frame.payload, loop_->now());
    }
  }
  // Header-only frames (pure ACKs) take the driver copybreak path: the
  // few bytes are copied into the skb head and the rx buffer is recycled
  // immediately, so they neither hold descriptor pages nor touch the
  // payload cache machinery.
  queue.backlog.push_back(
      BacklogEntry{std::move(frame), std::move(fragments), loop_->now()});
  if (!queue.napi_active && !queue.irq_timer->armed()) {
    if (config_.irq_moderation == 0) {
      queue.napi_active = true;
      kick_napi(index);
      return;
    }
    // Interrupt moderation: batch arrivals for a short window before
    // raising the IRQ (CX-5 style rx-usecs coalescing).
    queue.irq_timer->arm_after(config_.irq_moderation);
  }
}

void Nic::kick_napi(int index) {
  require(static_cast<bool>(rx_handler_), "rx handler not set");
  ++irqs_;
  if (obs_ != nullptr) {
    // Frames already queued ride this IRQ; stamping is idempotent, so
    // entries that saw an earlier kick keep their first stamp.  Frames
    // arriving during the active NAPI round get no IRQ stage at all —
    // matching reality, where they are polled without an interrupt.
    for (const BacklogEntry& entry :
         queues_[static_cast<std::size_t>(index)].backlog) {
      if (entry.frame.obs_span >= 0) {
        obs_->span_stamp(entry.frame.obs_span, obs::Stage::irq, loop_->now());
      }
    }
  }
  cores_[static_cast<std::size_t>(index)]->post(
      softirq_, [this, index](Core& core) {
        core.charge(CpuCategory::etc, core.cost().irq_entry);
        rx_handler_(core, index);
      });
}

void Nic::release_fragments(Core& core, FragmentVec& fragments) {
  for (const Fragment& fragment : fragments) {
    allocator_->release(core, fragment.page);
  }
  fragments.clear();
}

std::optional<Nic::PolledFrame> Nic::poll_one(Core& core, int index) {
  RxQueue& queue = queues_.at(static_cast<std::size_t>(index));
  if (queue.backlog.empty()) return std::nullopt;

  BacklogEntry entry = std::move(queue.backlog.front());
  queue.backlog.pop_front();

  PolledFrame polled;
  polled.arrived_at = entry.arrived;
  polled.fragments = std::move(entry.fragments);
  Frame frame = std::move(entry.frame);
  if (!polled.fragments.empty()) {
    iommu_->charge_unmap(
        core, static_cast<double>(descriptor_bytes()) / kPageBytes);
  }

  // Hardware receive coalescing: merge a contiguous same-flow train into
  // one delivered unit at zero CPU cost.
  if (config_.lro && !frame.is_ack && !frame.is_syn) {
    while (!queue.backlog.empty() && frame.payload < config_.lro_max_bytes) {
      BacklogEntry& next = queue.backlog.front();
      if (next.frame.is_ack || next.frame.is_syn ||
          next.frame.flow != frame.flow ||
          next.frame.seq != frame.seq + frame.payload ||
          frame.payload + next.frame.payload > config_.lro_max_bytes) {
        break;
      }
      iommu_->charge_unmap(
          core, static_cast<double>(descriptor_bytes()) / kPageBytes);
      polled.fragments.append_from(std::move(next.fragments));
      // The merged train keeps the first sampled segment's span; later
      // segments' journeys are absorbed (their spans stay incomplete).
      if (frame.obs_span < 0) frame.obs_span = next.frame.obs_span;
      frame.payload += next.frame.payload;
      frame.ecn = frame.ecn || next.frame.ecn;
      // One bad frame poisons the merged train's checksum.
      frame.corrupt = frame.corrupt || next.frame.corrupt;
      frame.sent_at = next.frame.sent_at;
      ++polled.segments;
      queue.backlog.pop_front();
    }
  }

  polled.frame = std::move(frame);
  return polled;
}

void Nic::dma_into_cache(const FragmentVec& fragments) {
  for (const Fragment& fragment : fragments) {
    Page* page = fragment.page;
    if (config_.dca && page->numa_node == topo_.nic_node) {
      // DDIO pushes the DMA write into the NIC-local LLC.
      llcs_[static_cast<std::size_t>(topo_.nic_node)]->dma_write(page->id);
    } else {
      // DMA to DRAM: coherency invalidates any cached copy.
      llcs_[static_cast<std::size_t>(page->numa_node)]->dma_invalidate(
          page->id);
    }
  }
}

std::size_t Nic::backlog(int index) const {
  return queues_.at(static_cast<std::size_t>(index)).backlog.size();
}

int Nic::posted_descriptors(int index) const {
  return static_cast<int>(
      queues_.at(static_cast<std::size_t>(index)).posted.size());
}

void Nic::collect_held_pages(std::unordered_set<const Page*>& held) const {
  for (const RxQueue& queue : queues_) {
    for (const RxDescriptor& descriptor : queue.posted) {
      for (const Fragment& fragment : descriptor.fragments) {
        held.insert(fragment.page);
      }
    }
    for (const BacklogEntry& entry : queue.backlog) {
      for (const Fragment& fragment : entry.fragments) {
        held.insert(fragment.page);
      }
    }
    if (const Page* carving = queue.pool->current_page()) held.insert(carving);
  }
}

void Nic::napi_complete(Core& core, int index) {
  RxQueue& queue = queues_.at(static_cast<std::size_t>(index));
  require(queue.napi_active, "napi_complete on an idle queue");
  // Driver replenishes rx descriptors during NAPI (paper §2.1).
  replenish(core, queue);
  if (!queue.backlog.empty()) {
    // Budget exhausted with work remaining: Linux defers the remainder
    // to ksoftirqd, which is scheduled fairly against user threads — so
    // the continuation runs at user priority and interleaves with the
    // application instead of starving it.
    cores_[static_cast<std::size_t>(index)]->post(
        queue.ksoftirqd,
        [this, index](Core& core2) { rx_handler_(core2, index); });
  } else {
    queue.napi_active = false;  // re-arm the IRQ
  }
}

}  // namespace hostsim
